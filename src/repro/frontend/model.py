"""The frontend memory structures: L1-I cache, L2 code presence, ITLB.

The fetch side reuses the existing memory-system building blocks
wherever they fit: the L1-I geometry is a
:class:`repro.params.CacheParams` (which validates power-of-two sets
exactly like the data caches), and the ITLB subclasses
:class:`repro.memsys.tlb.TlbHierarchy` — same two-level LRU structure
and Table-II-style penalties — adding the one capability the data side
never needed: *prefetch-triggered translation* (Jamet et al.), where an
instruction prefetch crossing a page boundary walks the page table off
the critical path and warms the ITLB for the later demand fetch.

Timing is deliberately lean — a fetch-block-granular presence model
with per-block LRU and a flat L2/DRAM penalty — because the frontend
claims compare prefetchers against each other on the same model, not
against silicon.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsys.tlb import TlbHierarchy, TlbParams
from repro.params import CacheParams


def default_l1i() -> CacheParams:
    """32 KB 8-way L1-I, 1-cycle fetch (ChampSim/Table-II style)."""
    return CacheParams("L1I", 32 * 1024, 8, 1, 8, 8)


@dataclass(frozen=True)
class FrontendParams:
    """Knobs of the fetch-directed frontend model.

    ``l2_penalty`` is what an L1-I miss that hits the unified L2 costs;
    ``dram_penalty`` is a cold code fetch that misses the L2 presence
    set too.  ``l2_code_blocks`` bounds how many distinct fetch blocks
    the unified L2 retains (8192 blocks = 512 KB, the data-side L2
    size).  ``itlb`` carries the ITLB/STLB geometry and penalties in
    the same shape as the data-side :class:`~repro.memsys.tlb.TlbParams`.
    """

    l1i: CacheParams = field(default_factory=default_l1i)
    l2_penalty: int = 14
    dram_penalty: int = 160
    l2_code_blocks: int = 8192
    itlb: TlbParams = field(
        default_factory=lambda: TlbParams(dtlb_entries=64, stlb_entries=1536)
    )

    def __post_init__(self) -> None:
        if self.l2_penalty < 1 or self.dram_penalty < self.l2_penalty:
            raise ConfigurationError(
                "need dram_penalty >= l2_penalty >= 1 "
                f"(got l2={self.l2_penalty}, dram={self.dram_penalty})"
            )
        if self.l2_code_blocks < 1:
            raise ConfigurationError("l2_code_blocks must be positive")


@dataclass
class L1iStats:
    """Fetch-side counters, resettable at the end of warm-up.

    ``demand_misses`` counts only *uncovered* misses (the fetch paid the
    full L2/DRAM penalty).  A fetch that found its block brought in by a
    prefetch counts as ``pf_covered`` instead — and as ``pf_late`` too
    when the prefetch was still in flight and the fetch paid part of
    the latency.
    """

    fetch_blocks: int = 0
    demand_misses: int = 0
    dram_misses: int = 0
    pf_issued: int = 0
    pf_covered: int = 0
    pf_late: int = 0
    pf_duplicate: int = 0

    def mpki(self, instructions: int) -> float:
        """Uncovered L1-I misses per kilo-instruction."""
        return self.demand_misses * 1000.0 / instructions if instructions else 0.0


class InstructionCache:
    """Set-associative LRU presence model over fetch blocks.

    Blocks are installed eagerly when a prefetch is *issued* (the
    ready cycle lives in the engine's in-flight map), so prefetches
    compete for cache space and can pollute — the property that keeps
    the accuracy-throttled bouquet honest against a blast-everything
    baseline.  Each resident block carries a ``prefetched`` bit that is
    cleared on its first demand touch (that touch is the per-block
    "useful" event).
    """

    def __init__(self, params: CacheParams | None = None) -> None:
        self.params = params or default_l1i()
        self._set_mask = self.params.sets - 1
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.params.sets)
        ]

    def _set_of(self, block: int) -> OrderedDict[int, bool]:
        return self._sets[block & self._set_mask]

    def lookup(self, block: int) -> bool:
        """Probe for a fetch block; updates LRU order on hit."""
        cache_set = self._set_of(block)
        if block in cache_set:
            cache_set.move_to_end(block)
            return True
        return False

    def prefetched_bit(self, block: int) -> bool:
        """Return (and clear) the resident block's prefetched bit."""
        cache_set = self._set_of(block)
        was_prefetched = cache_set.get(block, False)
        if was_prefetched:
            cache_set[block] = False
        return was_prefetched

    def install(self, block: int, prefetched: bool) -> int | None:
        """Install a block; returns the evicted block, if any."""
        cache_set = self._set_of(block)
        if block in cache_set:
            cache_set.move_to_end(block)
            cache_set[block] = prefetched
            return None
        evicted = None
        if len(cache_set) >= self.params.ways:
            evicted, _ = cache_set.popitem(last=False)
        cache_set[block] = prefetched
        return evicted

    def __contains__(self, block: int) -> bool:
        return block in self._set_of(block)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


class L2CodePresence:
    """Bounded LRU set of fetch blocks the unified L2 still holds.

    Decides whether an L1-I miss pays ``l2_penalty`` or
    ``dram_penalty``: the first touch of a block (cold code) always
    goes to memory, re-fetches hit the L2 until capacity evicts them.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._blocks: OrderedDict[int, None] = OrderedDict()

    def touch(self, block: int) -> bool:
        """Record a fetch of ``block``; True when the L2 already had it."""
        if block in self._blocks:
            self._blocks.move_to_end(block)
            return True
        if len(self._blocks) >= self.capacity:
            self._blocks.popitem(last=False)
        self._blocks[block] = None
        return False

    def __len__(self) -> int:
        return len(self._blocks)


class Itlb(TlbHierarchy):
    """Instruction TLB: the data-side TLB hierarchy plus prefetch fills.

    Demand translation behaves exactly like the parent (ITLB hit free,
    STLB hit pays ``stlb_penalty``, miss pays ``walk_penalty``).  The
    addition is :meth:`prefetch_fill`: a TLB-aware instruction
    prefetcher that crosses a page boundary triggers the translation at
    prefetch time, off the critical path, so the later demand fetch
    hits.  ``prefetch_walks`` counts those speculative walks.
    """

    def __init__(self, params: TlbParams | None = None) -> None:
        super().__init__(params)
        self.prefetch_walks = 0

    def prefetch_fill(self, vpage: int) -> None:
        """Translate ``vpage`` speculatively and warm both TLB levels.

        An STLB hit is a free promotion into the ITLB; only a miss in
        both levels costs a (speculative, off-critical-path) walk.
        """
        if self._dtlb.lookup(vpage):
            return
        self._dtlb.insert(vpage)
        if self._stlb.lookup(vpage):
            return
        self.prefetch_walks += 1
        self._stlb.insert(vpage)

    def resident(self) -> tuple[int, int]:
        """Current (ITLB, STLB) occupancy — for capacity invariants."""
        return len(self._dtlb), len(self._stlb)

    def reset_stats(self) -> None:
        """Zero demand and prefetch counters (contents persist)."""
        super().reset_stats()
        self.prefetch_walks = 0
