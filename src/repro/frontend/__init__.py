"""Instruction-side (frontend) prefetching: L1-I + ITLB model and bouquet.

The paper's bouquet targets the L1-D, but four of the five related
papers in PAPERS.md are instruction-prefetching work (MANA, Jamet et
al.'s cache+TLB frontend management, ...).  This package retargets the
classifier idea at the fetch stream:

* :mod:`repro.frontend.model` — a fetch-directed L1-I cache and an
  ITLB built on the existing :mod:`repro.memsys.tlb` hierarchy, with
  prefetch-triggered translation support.
* :mod:`repro.frontend.ipcp_i` — **IPCP-I**, the bouquet over fetch
  blocks: GS-I (dense code regions), CS-I (repeating fetch-block
  deltas, i.e. call/return discontinuities), CPLX-I (delta-signature
  chains for dispatch loops) and an MPKI-gated next-line class.
* :mod:`repro.frontend.baselines` — next-line-I and **MANA-lite**, a
  record-and-replay baseline in the spirit of Ansari et al.
* :mod:`repro.frontend.engine` — the scalar fetch-driven simulation
  loop producing :class:`~repro.frontend.engine.FrontendResult`.
* :mod:`repro.frontend.registry` — the named frontend prefetcher
  configurations (``ipcp_i``, ``ipcp_i_tlb_blind``, ``mana_lite``,
  ``next_line_i``, ``none``).

See ``docs/frontend.md`` for the design narrative and the deltas
versus the data-side IPCP.
"""

from repro.frontend.baselines import ManaLitePrefetcher, NextLineIPrefetcher
from repro.frontend.engine import (
    FrontendResult,
    get_frontend_run_info,
    simulate_frontend,
)
from repro.frontend.ipcp_i import (
    FE_CLASS_NAMES,
    FE_CPLX,
    FE_CS,
    FE_GS,
    FE_NL,
    FE_NONE,
    IpcpIConfig,
    IpcpIPrefetcher,
)
from repro.frontend.model import FrontendParams, InstructionCache, Itlb, L1iStats
from repro.frontend.registry import (
    available_frontend_prefetchers,
    make_frontend_prefetcher,
    register_frontend_prefetcher,
)

__all__ = [
    "FE_CLASS_NAMES",
    "FE_CPLX",
    "FE_CS",
    "FE_GS",
    "FE_NL",
    "FE_NONE",
    "FrontendParams",
    "FrontendResult",
    "InstructionCache",
    "IpcpIConfig",
    "IpcpIPrefetcher",
    "Itlb",
    "L1iStats",
    "ManaLitePrefetcher",
    "NextLineIPrefetcher",
    "available_frontend_prefetchers",
    "get_frontend_run_info",
    "make_frontend_prefetcher",
    "register_frontend_prefetcher",
    "simulate_frontend",
]
