"""Fetch-directed frontend simulation loop.

The loop walks a trace's *instruction pointers* (the data side walks
its addresses): every retired instruction costs one base cycle, and a
fetch-block transition probes the ITLB and the L1-I.  Misses stall the
front end for the L2 (or, for cold code, DRAM) penalty; prefetched
blocks that are still in flight charge only the remaining latency
("late" prefetches).  Prefetch requests install eagerly — they occupy
L1-I ways and can pollute — and a request that crosses the demand page
triggers the speculative ITLB translation (see
:meth:`repro.frontend.model.Itlb.prefetch_fill`).

``engine="batched"`` is accepted for symmetry with
:func:`repro.sim.engine.simulate` but currently falls back to this
scalar loop — :func:`get_frontend_run_info` reports the
``support_reason``, mirroring the data-side idiom, so a future fused
kernel can slot in behind the same API and a cross-engine verify cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.frontend.model import (
    FrontendParams,
    InstructionCache,
    Itlb,
    L1iStats,
    L2CodePresence,
)
from repro.prefetchers.base import (
    AccessContext,
    AccessType,
    Prefetcher,
    PrefetcherSummary,
)
from repro.sim.trace import Trace

_LAST_RUN_INFO: dict = {"engine": "scalar", "fused": False,
                        "support_reason": "no frontend run yet"}

_SCALAR_ONLY_REASON = (
    "frontend model has no batched kernel yet (scalar fallback)"
)


def get_frontend_run_info() -> dict:
    """Engine actually used by the most recent frontend simulation.

    Mirrors :func:`repro.sim.engine.get_last_run_info`: ``fused`` is
    False whenever the scalar loop ran, and ``support_reason`` says
    why (for v1, always the missing batched kernel).
    """
    return dict(_LAST_RUN_INFO)


@dataclass(frozen=True)
class FrontendResult:
    """Outcome of one frontend run (picklable, summary-only).

    ``cycles``/``instructions`` cover the post-warm-up ROI.
    ``itlb_accesses``/``itlb_misses``/``demand_walks`` are the demand
    translation counters; ``prefetch_walks`` counts speculative
    prefetch-triggered walks (TLB-aware policy only).
    """

    trace_name: str
    prefetcher: PrefetcherSummary
    instructions: int
    cycles: int
    l1i: L1iStats
    itlb_accesses: int
    itlb_misses: int
    demand_walks: int
    prefetch_walks: int

    @property
    def fetch_cpi(self) -> float:
        """Cycles per instruction of the modeled front end."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l1i_mpki(self) -> float:
        """Uncovered L1-I misses per kilo-instruction."""
        return self.l1i.mpki(self.instructions)

    @property
    def walks_pki(self) -> float:
        """Demand page walks per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return self.demand_walks * 1000.0 / self.instructions

    def speedup_over(self, baseline: "FrontendResult") -> float:
        """Fetch-side speedup of this run relative to ``baseline``."""
        if not self.cycles or not baseline.cycles:
            return 0.0
        return (baseline.cycles / baseline.instructions) / \
            (self.cycles / self.instructions)

    def coverage_over(self, baseline: "FrontendResult") -> float:
        """Fraction of the baseline's L1-I misses this run removed."""
        if not baseline.l1i.demand_misses:
            return 0.0
        return 1.0 - self.l1i.demand_misses / baseline.l1i.demand_misses


def simulate_frontend(
    trace: Trace,
    prefetcher: Prefetcher | None = None,
    params: FrontendParams | None = None,
    warmup: int | None = None,
    engine: str = "scalar",
    recorder=None,
) -> FrontendResult:
    """Run one trace's instruction stream through the frontend model.

    ``warmup`` defaults to 20% of the trace (same convention as the
    data-side :func:`~repro.sim.engine.simulate`); statistics and the
    cycle counter reset at the ROI boundary while all model state
    (cache contents, TLB contents, prefetcher tables) persists.
    ``recorder``, when given, is attached to the prefetcher for
    decision-level telemetry.
    """
    global _LAST_RUN_INFO
    if engine not in ("scalar", "batched"):
        raise ConfigurationError(
            f"unknown frontend engine {engine!r} (scalar or batched)"
        )
    _LAST_RUN_INFO = {
        "engine": "scalar",
        "fused": False,
        "support_reason": _SCALAR_ONLY_REASON if engine == "batched"
        else "scalar engine requested",
    }
    params = params or FrontendParams()
    if recorder is not None and prefetcher is not None:
        prefetcher.attach_recorder(recorder)

    l1i = InstructionCache(params.l1i)
    l2_code = L2CodePresence(params.l2_code_blocks)
    itlb = Itlb(params.itlb)
    stats = L1iStats()
    inflight: dict[int, tuple[int, int]] = {}  # block -> (ready, pf_class)

    warmup = len(trace) // 5 if warmup is None else warmup
    warmup = min(warmup, len(trace))

    cycle = 0
    roi_start_cycle = 0
    instructions = 0
    roi_instructions = 0
    misses_seen = 0  # running total for the NL MPKI gate (never reset)
    current_block: int | None = None

    for position, record in enumerate(trace):
        if position == warmup:
            stats = L1iStats()
            itlb.reset_stats()
            roi_start_cycle = cycle
            roi_instructions = instructions
        ip = record[1]
        cycle += 1
        instructions += 1
        block = ip >> 6
        if block == current_block:
            continue
        current_block = block
        stats.fetch_blocks += 1
        page = ip >> 12
        cycle += itlb.access(page)

        hit = l1i.lookup(block)
        if hit:
            if l1i.prefetched_bit(block):
                ready_entry = inflight.pop(block, None)
                pf_class = ready_entry[1] if ready_entry else 0
                if ready_entry and ready_entry[0] > cycle:
                    stats.pf_late += 1
                    cycle += ready_entry[0] - cycle
                stats.pf_covered += 1
                if prefetcher is not None:
                    prefetcher.on_prefetch_hit(block << 6, pf_class)
        else:
            inflight.pop(block, None)
            stats.demand_misses += 1
            misses_seen += 1
            if l2_code.touch(block):
                cycle += params.l2_penalty
            else:
                stats.dram_misses += 1
                cycle += params.dram_penalty
            l1i.install(block, prefetched=False)

        if prefetcher is None:
            continue
        mpki = misses_seen * 1000.0 / instructions
        requests = prefetcher.on_access(AccessContext(
            ip=ip, addr=ip, cache_hit=hit, kind=AccessType.LOAD,
            cycle=cycle, mpki=mpki,
        ))
        for request in requests:
            target = request.addr >> 6
            if target in l1i or target in inflight:
                stats.pf_duplicate += 1
                continue
            stats.pf_issued += 1
            in_l2 = l2_code.touch(target)
            latency = params.l2_penalty if in_l2 else params.dram_penalty
            inflight[target] = (cycle + latency, request.pf_class)
            evicted = l1i.install(target, prefetched=True)
            if evicted is not None:
                inflight.pop(evicted, None)
            target_page = request.addr >> 12
            if target_page != page:
                itlb.prefetch_fill(target_page)
            prefetcher.on_prefetch_fill(request.addr, request.pf_class)

    summary = (prefetcher.summary() if prefetcher is not None
               else PrefetcherSummary(name="none", storage_bits=0))
    return FrontendResult(
        trace_name=trace.name,
        prefetcher=summary,
        instructions=instructions - roi_instructions,
        cycles=cycle - roi_start_cycle,
        l1i=stats,
        itlb_accesses=itlb.stats.accesses,
        itlb_misses=itlb.stats.dtlb_misses,
        demand_walks=itlb.stats.stlb_misses,
        prefetch_walks=itlb.prefetch_walks,
    )
