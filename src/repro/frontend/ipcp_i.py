"""IPCP-I: the classifier bouquet retargeted at the instruction stream.

The data-side bouquet classifies *load IPs*; the fetch stream has no
per-IP locality to exploit — its structure lives in the sequence of
*fetch blocks* (64-byte lines of code).  IPCP-I therefore keeps the
bouquet shape (prioritised classes, per-class accuracy throttling, an
RR filter, a page-crossing policy) but swaps the classifiers:

* **GS-I** — dense 2 KB code regions (straight-line function bodies)
  stream forward, like the data side's GS over data regions; code is
  fetched overwhelmingly in the +1 direction, so GS-I streams ahead
  without the data side's direction bit.
* **CS-I** — a direct-mapped table keyed by fetch block remembers, with
  2-bit hysteresis, the block delta that followed last time.  On a
  confident entry the predictor *chains*: it walks the table along the
  learned deltas up to ``degree`` hops, following the recorded control
  flow through bodies and call/return discontinuities (the analogue of
  per-IP constant stride, with the fetch block standing in for the IP).
* **CPLX-I** — a global signature of recent block deltas indexes a
  CSPT-style table and chains through it, covering repeating
  multi-delta patterns such as interpreter dispatch loops.
* **NL-I** — next fetch block, gated on the running fetch MPKI like the
  data side's NL class.

Priority GS-I > CS-I > CPLX-I > NL-I with the data-side rule that a
low-accuracy winner does not silence lower classes.

The one genuinely new knob is ``page_policy``: ``"blind"`` keeps the
data-side spatial contract (never cross the trigger's 4 KB page);
``"aware"`` lets prefetches cross pages, and the frontend engine then
performs the prefetch-triggered ITLB translation (Jamet et al.).  The
TLB-aware-vs-blind ablation in EXPERIMENTS.md flips exactly this knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rr_filter import RrFilter
from repro.core.throttle import ClassThrottle
from repro.errors import ConfigurationError
from repro.prefetchers.base import AccessContext, Prefetcher, PrefetchRequest
from repro.telemetry import (
    CLASSIFY,
    DROP,
    DROP_PAGE,
    DROP_THROTTLE,
    EPOCH,
    Event,
    ISSUE,
    NULL_RECORDER,
    USEFUL,
)

# Frontend prefetch classes (disjoint from the data-side class codes on
# purpose: the two hierarchies never exchange metadata).
FE_NONE = 0
FE_GS = 1
FE_CS = 2
FE_CPLX = 3
FE_NL = 4

FE_CLASS_NAMES = {
    FE_NONE: "none",
    FE_GS: "gs_i",
    FE_CS: "cs_i",
    FE_CPLX: "cplx_i",
    FE_NL: "nl_i",
}

# Fetch-block geometry: blocks are 64-byte lines, code regions are 2 KB
# (32 blocks), pages are 4 KB (64 blocks) — same constants as the data
# side (repro.params), expressed in block space.
BLOCKS_PER_REGION = 32
BLOCKS_PER_PAGE = 64

# Signature roll for CPLX-I: two bits of shift, six bits of delta.
SIG_MASK = 0x7F
SIG_SHIFT = 2
SIG_DELTA_MASK = 0x3F

CONF_MAX = 3
CONF_THRESHOLD = 2


@dataclass(frozen=True)
class IpcpIConfig:
    """Table sizes, degrees and policies for one IPCP-I instance."""

    bt_entries: int = 2048      # CS-I block table (direct-mapped)
    bt_tag_bits: int = 9
    cspt_entries: int = 128     # CPLX-I signature table
    rst_entries: int = 8        # GS-I region stream table
    region_train_threshold: int = 12  # touched blocks before a region trains
    gs_degree: int = 5
    cs_degree: int = 4
    cplx_degree: int = 3
    nl_degree: int = 2
    nl_mpki_gate: float = 50.0  # NL-I only below this fetch MPKI (paper's gate)
    rr_entries: int = 32
    rr_tag_bits: int = 12
    page_policy: str = "aware"  # "aware" crosses pages, "blind" drops

    def __post_init__(self) -> None:
        if self.page_policy not in ("aware", "blind"):
            raise ConfigurationError(
                f"page_policy must be 'aware' or 'blind', got "
                f"{self.page_policy!r}"
            )
        for name in ("bt_entries", "cspt_entries", "rst_entries",
                     "rr_entries"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be positive")
        if self.bt_entries & (self.bt_entries - 1):
            raise ConfigurationError("bt_entries must be a power of two")
        if self.cspt_entries & (self.cspt_entries - 1):
            raise ConfigurationError("cspt_entries must be a power of two")
        for name in ("gs_degree", "cs_degree", "cplx_degree", "nl_degree"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if not 1 <= self.region_train_threshold <= BLOCKS_PER_REGION:
            raise ConfigurationError(
                "region_train_threshold must be in [1, 32]"
            )

    @property
    def storage_bits(self) -> int:
        """Hardware budget (Table-I style accounting).

        Block table: tag + 16-bit delta + 2-bit confidence per entry.
        CSPT: 16-bit delta + 2-bit confidence.  RST: 20-bit region tag,
        32-bit touch bitmap, trained bit.  RR filter: partial tags.
        Signature register: 7 bits.
        """
        bt = self.bt_entries * (self.bt_tag_bits + 16 + 2)
        cspt = self.cspt_entries * (16 + 2)
        rst = self.rst_entries * (20 + BLOCKS_PER_REGION + 1)
        rr = self.rr_entries * self.rr_tag_bits
        return bt + cspt + rst + rr + 7


class _RegionEntry:
    """One GS-I region: touch bitmap and trained flag."""

    __slots__ = ("region", "touched", "trained")

    def __init__(self, region: int, offset: int) -> None:
        self.region = region
        self.touched = {offset}
        self.trained = False


class IpcpIPrefetcher(Prefetcher):
    """The instruction-stream bouquet (see module docstring).

    Driven once per fetch-block transition: the frontend engine calls
    :meth:`on_access` with ``ctx.addr`` (== ``ctx.ip``) at the first
    byte fetched in the new block, ``ctx.cache_hit`` from the L1-I
    lookup and ``ctx.mpki`` the running fetch MPKI for the NL gate.
    """

    def __init__(self, config: IpcpIConfig | None = None,
                 name: str = "ipcp_i") -> None:
        self.config = config or IpcpIConfig()
        super().__init__(name=name, storage_bits=self.config.storage_bits)
        cfg = self.config
        self.recorder = NULL_RECORDER
        self.rr_filter = RrFilter(cfg.rr_entries, cfg.rr_tag_bits)
        self._bt_index_bits = (cfg.bt_entries - 1).bit_length()
        self._bt_tag_mask = (1 << cfg.bt_tag_bits) - 1
        # CS-I block table: index -> [tag, delta, confidence].
        self._bt: list[list[int] | None] = [None] * cfg.bt_entries
        # CPLX-I signature table: sig -> [delta, confidence].
        self._cspt: list[list[int] | None] = [None] * cfg.cspt_entries
        self._sig = 0
        # GS-I region stream table, LRU over _RegionEntry.
        self._rst: dict[int, _RegionEntry] = {}
        self._last_block: int | None = None
        self._last_winner = FE_NONE
        self.throttles = {
            FE_GS: ClassThrottle(cfg.gs_degree),
            FE_CS: ClassThrottle(cfg.cs_degree),
            FE_CPLX: ClassThrottle(cfg.cplx_degree),
            FE_NL: ClassThrottle(cfg.nl_degree),
        }

    def attach_recorder(self, recorder) -> None:
        """Attach a telemetry recorder (observational only)."""
        self.recorder = recorder
        self.rr_filter.recorder = recorder
        for pf_class, throttle in self.throttles.items():
            throttle.on_epoch = self._epoch_hook(pf_class)

    def _epoch_hook(self, pf_class: int):
        def on_epoch(accuracy: float, prev_degree: int, degree: int) -> None:
            if self.recorder.enabled:
                self.recorder.emit(Event(
                    kind=EPOCH, level="l1i", pf_class=pf_class,
                    accuracy=accuracy, prev_degree=prev_degree,
                    degree=degree,
                ))
        return on_epoch

    # ---------------------------------------------------------- training

    def _bt_slot(self, block: int) -> tuple[int, int]:
        """Direct-mapped (index, tag) of a fetch block in the CS-I table."""
        index = block & (self.config.bt_entries - 1)
        tag = (block >> self._bt_index_bits) & self._bt_tag_mask
        return index, tag

    def _train_bt(self, block: int, delta: int) -> None:
        """2-bit hysteresis update of the CS-I entry for ``block``."""
        index, tag = self._bt_slot(block)
        entry = self._bt[index]
        if entry is None or entry[0] != tag:
            if entry is None or entry[2] == 0:
                self._bt[index] = [tag, delta, 1]
            else:
                entry[2] -= 1
            return
        if entry[1] == delta:
            entry[2] = min(CONF_MAX, entry[2] + 1)
        else:
            entry[2] -= 1
            if entry[2] <= 0:
                entry[1] = delta
                entry[2] = 1

    def _train_cspt(self, delta: int) -> None:
        """Hysteresis update of CSPT[sig], then roll the signature."""
        entry = self._cspt[self._sig]
        if entry is None:
            self._cspt[self._sig] = [delta, 1]
        elif entry[0] == delta:
            entry[1] = min(CONF_MAX, entry[1] + 1)
        else:
            entry[1] -= 1
            if entry[1] <= 0:
                entry[0] = delta
                entry[1] = 1
        self._sig = ((self._sig << SIG_SHIFT)
                     ^ (delta & SIG_DELTA_MASK)) & SIG_MASK

    def _train_rst(self, block: int) -> None:
        """Track region density and direction for GS-I."""
        region = block // BLOCKS_PER_REGION
        offset = block % BLOCKS_PER_REGION
        entry = self._rst.get(region)
        if entry is None:
            if len(self._rst) >= self.config.rst_entries:
                oldest = next(iter(self._rst))
                del self._rst[oldest]
            self._rst[region] = _RegionEntry(region, offset)
            return
        # LRU refresh: re-insert at the back.
        del self._rst[region]
        self._rst[region] = entry
        entry.touched.add(offset)
        if len(entry.touched) >= self.config.region_train_threshold:
            entry.trained = True

    # ------------------------------------------------------ classification

    def _gs_candidates(self, block: int) -> list[int]:
        entry = self._rst.get(block // BLOCKS_PER_REGION)
        if entry is None or not entry.trained:
            return []
        degree = self.throttles[FE_GS].degree
        return [block + k for k in range(1, degree + 1)]

    def _cs_candidates(self, block: int) -> list[int]:
        degree = self.throttles[FE_CS].degree
        current = block
        out: list[int] = []
        for _ in range(degree):
            index, tag = self._bt_slot(current)
            entry = self._bt[index]
            if (entry is None or entry[0] != tag
                    or entry[2] < CONF_THRESHOLD or entry[1] == 0):
                break
            current += entry[1]
            out.append(current)
        return out

    def _cplx_candidates(self, block: int) -> list[int]:
        degree = self.throttles[FE_CPLX].degree
        sig = self._sig
        target = block
        out: list[int] = []
        for _ in range(degree):
            entry = self._cspt[sig]
            if entry is None or entry[1] < CONF_THRESHOLD or entry[0] == 0:
                break
            target += entry[0]
            out.append(target)
            sig = ((sig << SIG_SHIFT) ^ (entry[0] & SIG_DELTA_MASK)) & SIG_MASK
        return out

    def _nl_candidates(self, block: int, mpki: float) -> list[int]:
        if mpki >= self.config.nl_mpki_gate:
            return []
        degree = self.throttles[FE_NL].degree
        return [block + k for k in range(1, degree + 1)]

    # ------------------------------------------------------------ emission

    def _emit(self, targets: list[int], pf_class: int, block: int,
              ctx: AccessContext, out: list[PrefetchRequest]) -> None:
        """Page-policy check + RR filter, then append requests."""
        blind = self.config.page_policy == "blind"
        page = block // BLOCKS_PER_PAGE
        throttle = self.throttles[pf_class]
        if throttle.degree < throttle.default_degree:
            self.bump("throttle_truncations")
            if self.recorder.enabled:
                self.recorder.emit(Event(
                    kind=DROP, level="l1i", cycle=ctx.cycle, ip=ctx.ip,
                    pf_class=pf_class, reason=DROP_THROTTLE,
                    degree=throttle.degree,
                    prev_degree=throttle.default_degree,
                ))
        for target in targets:
            if target < 0:
                continue
            if blind and target // BLOCKS_PER_PAGE != page:
                self.bump("page_drops")
                if self.recorder.enabled:
                    self.recorder.emit(Event(
                        kind=DROP, level="l1i", cycle=ctx.cycle, ip=ctx.ip,
                        addr=target << 6, pf_class=pf_class,
                        reason=DROP_PAGE,
                    ))
                continue
            if self.rr_filter.check_and_insert(target, ip=ctx.ip,
                                               pf_class=pf_class,
                                               cycle=ctx.cycle):
                self.bump("rr_filter_drops")
                continue
            out.append(PrefetchRequest(addr=target << 6, pf_class=pf_class))

    def on_access(self, ctx: AccessContext) -> list[PrefetchRequest]:
        """Observe one fetch-block transition; return prefetches."""
        block = ctx.addr >> 6
        self.rr_filter.insert(block)
        if self._last_block is not None and block != self._last_block:
            delta = block - self._last_block
            self._train_bt(self._last_block, delta)
            self._train_cspt(delta)
        self._train_rst(block)
        self._last_block = block

        candidates = {
            FE_GS: self._gs_candidates(block),
            FE_CS: self._cs_candidates(block),
            FE_CPLX: self._cplx_candidates(block),
            FE_NL: self._nl_candidates(block, ctx.mpki),
        }
        out: list[PrefetchRequest] = []
        winner = FE_NONE
        claimed = False
        for pf_class in (FE_GS, FE_CS, FE_CPLX, FE_NL):
            targets = candidates[pf_class]
            if not targets or claimed:
                continue
            if winner == FE_NONE:
                winner = pf_class
            self._emit(targets, pf_class, block, ctx, out)
            # A low-accuracy winner lets the next class try as well.
            if not self.throttles[pf_class].low_accuracy:
                claimed = True
        if winner != FE_NONE and winner != self._last_winner:
            if self.recorder.enabled:
                self.recorder.emit(Event(
                    kind=CLASSIFY, level="l1i", cycle=ctx.cycle, ip=ctx.ip,
                    pf_class=winner, prev_class=self._last_winner,
                ))
            self._last_winner = winner
        return out

    # ------------------------------------------------------------ feedback

    def on_prefetch_fill(self, addr: int, pf_class: int) -> None:
        """Count a filled prefetch toward its class's accuracy epoch."""
        throttle = self.throttles.get(pf_class)
        if throttle is not None:
            throttle.on_fill()
        self.bump("pf_fills")
        if self.recorder.enabled:
            self.recorder.emit(Event(
                kind=ISSUE, level="l1i", addr=addr, pf_class=pf_class,
            ))

    def on_prefetch_hit(self, addr: int, pf_class: int) -> None:
        """Credit a demand hit on a prefetched block to its class."""
        throttle = self.throttles.get(pf_class)
        if throttle is not None:
            throttle.on_hit()
        self.bump("pf_hits")
        if self.recorder.enabled:
            self.recorder.emit(Event(
                kind=USEFUL, level="l1i", addr=addr, pf_class=pf_class,
            ))
