"""Frontend baselines: next-line-I and the MANA-lite record-and-replay.

Next-line-I is the classic fetch-directed baseline: on every
fetch-block transition, grab the next ``degree`` sequential blocks
(within the page — hardware next-line fetchers do not translate).

MANA-lite distils the record-and-replay core of MANA (Ansari et al.,
PAPERS.md): an L1-I *miss* anchors a recording window, and the next
``stream_length`` distinct fetch blocks — hits or misses, i.e. the
actual fetch path, which is what MANA's spatial regions capture —
become the trigger's replay stream.  Whenever a known trigger block is
fetched again, its stream is prefetched.  Unlike full MANA there is no
spatial-region compression or HOBPT, just the bounded trigger table,
which keeps the baseline honest about what bounded record-and-replay
buys on these traces.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.prefetchers.base import AccessContext, Prefetcher, PrefetchRequest

BLOCKS_PER_PAGE = 64


class NextLineIPrefetcher(Prefetcher):
    """Sequential next-block instruction prefetcher (page-bounded)."""

    def __init__(self, degree: int = 2) -> None:
        if degree < 1:
            raise ConfigurationError("next-line degree must be >= 1")
        super().__init__(name="next_line_i", storage_bits=0)
        self.degree = degree

    def on_access(self, ctx: AccessContext) -> list[PrefetchRequest]:
        """Prefetch the next ``degree`` blocks in the same page."""
        block = ctx.addr >> 6
        page = block // BLOCKS_PER_PAGE
        out = []
        for k in range(1, self.degree + 1):
            target = block + k
            if target // BLOCKS_PER_PAGE != page:
                self.bump("page_drops")
                break
            out.append(PrefetchRequest(addr=target << 6))
        return out


class ManaLitePrefetcher(Prefetcher):
    """Miss-anchored record-and-replay over the fetch-block stream.

    ``_table`` maps a trigger block (a block that missed) to the tuple
    of distinct fetch blocks that followed it last time, LRU-bounded at
    ``table_entries``.  Recording the *fetch path* rather than the miss
    sequence is deliberate: capacity misses wander between passes over
    the same code, but the path repeats — so a learned stream replays
    identically on every later walk of that path, the property
    ``tests/test_frontend.py`` locks down.
    """

    def __init__(self, table_entries: int = 2048,
                 stream_length: int = 6) -> None:
        if table_entries < 1 or stream_length < 1:
            raise ConfigurationError(
                "table_entries and stream_length must be >= 1"
            )
        # ~2k entries x (tag + 4 x 26-bit block pointers) — in the same
        # storage ballpark as MANA's budget-constrained configurations.
        super().__init__(
            name="mana_lite",
            storage_bits=table_entries * (26 + stream_length * 26),
        )
        self.table_entries = table_entries
        self.stream_length = stream_length
        self._table: OrderedDict[int, tuple[int, ...]] = OrderedDict()
        self._trigger: int | None = None
        self._stream: list[int] = []

    def on_access(self, ctx: AccessContext) -> list[PrefetchRequest]:
        """Record the fetch path after a miss; replay on known triggers.

        Replaying on *any* access to a trigger (hit or miss) is what
        lets covered streams chain: once a stream is prefetched, its
        blocks arrive as hits, and those hits must kick off the next
        streams or coverage stalls after one window.
        """
        block = ctx.addr >> 6
        self._record(block, ctx.cache_hit)
        recorded = self._table.get(block)
        if recorded is None:
            return []
        self._table.move_to_end(block)
        self.bump("replays")
        return [PrefetchRequest(addr=b << 6) for b in recorded]

    def _record(self, block: int, cache_hit: bool) -> None:
        """Extend the open recording window; a miss may anchor a new one."""
        if self._trigger is not None:
            if block != self._trigger and block not in self._stream:
                self._stream.append(block)
            if len(self._stream) >= self.stream_length:
                self._commit()
                self._trigger = None
                self._stream = []
        if self._trigger is None and not cache_hit:
            self._trigger = block
            self._stream = []

    def _commit(self) -> None:
        """Store the completed stream, LRU-evicting if the table is full."""
        if self._trigger is None or not self._stream:
            return
        table = self._table
        if self._trigger in table:
            table.move_to_end(self._trigger)
        elif len(table) >= self.table_entries:
            table.popitem(last=False)
        table[self._trigger] = tuple(self._stream)

    def recorded_stream(self, block: int) -> tuple[int, ...]:
        """The stream currently recorded for ``block`` (tests/debug)."""
        return self._table.get(block, ())
