"""Naive executable oracle of the IPCP-I instruction-stream bouquet.

The same discipline as :mod:`repro.verify.oracles`, applied to
:class:`repro.frontend.ipcp_i.IpcpIPrefetcher`: an independent,
deliberately slow re-implementation of the IPCP-I rules — plain dicts,
no shared code with :mod:`repro.frontend` beyond the
:class:`~repro.frontend.ipcp_i.IpcpIConfig` parameters — stepped in
lockstep with the production prefetcher and diffed per fetch-block
transition (``tests/test_frontend.py``).  A future fused/batched
frontend kernel must keep matching this model.
"""

from __future__ import annotations

from repro.frontend.ipcp_i import IpcpIConfig
from repro.verify.oracles import OracleRrFilter, OracleThrottle

BLOCKS_PER_REGION = 32
BLOCKS_PER_PAGE = 64
SIG_MASK = 0x7F
SIG_SHIFT = 2
SIG_DELTA_MASK = 0x3F
CONF_MAX = 3
CONF_THRESHOLD = 2
LOW_WATERMARK = 0.40

FE_GS, FE_CS, FE_CPLX, FE_NL = 1, 2, 3, 4
PRIORITY = (FE_GS, FE_CS, FE_CPLX, FE_NL)


class OracleIpcpI:
    """Lockstep model of one IPCP-I instance.

    :meth:`step` consumes one fetch-block transition and returns the
    ordered ``(block, pf_class)`` request tuple the IPCP-I rules
    produce; :meth:`on_prefetch_fill`/:meth:`on_prefetch_hit` mirror
    the accuracy feedback so the throttle state tracks the production
    prefetcher's exactly.
    """

    def __init__(self, config: IpcpIConfig | None = None) -> None:
        self.config = config or IpcpIConfig()
        cfg = self.config
        self.rr = OracleRrFilter(cfg.rr_entries, cfg.rr_tag_bits)
        self.block_table: dict[int, list[int]] = {}  # index -> [tag, d, conf]
        self.cspt: dict[int, list[int]] = {}  # signature -> [delta, conf]
        self.signature = 0
        self.regions: dict[int, dict] = {}  # region -> {touched, trained}
        self.last_block: int | None = None
        self.throttles = {
            FE_GS: OracleThrottle(cfg.gs_degree),
            FE_CS: OracleThrottle(cfg.cs_degree),
            FE_CPLX: OracleThrottle(cfg.cplx_degree),
            FE_NL: OracleThrottle(cfg.nl_degree),
        }

    def _slot(self, block: int) -> tuple[int, int]:
        """Direct-mapped (index, tag) pair for the block table."""
        cfg = self.config
        index = block % cfg.bt_entries
        tag = (block // cfg.bt_entries) % (1 << cfg.bt_tag_bits)
        return index, tag

    def _train(self, prev_block: int, block: int) -> None:
        """Train CS-I and CPLX-I with the observed block transition."""
        delta = block - prev_block
        index, tag = self._slot(prev_block)
        entry = self.block_table.get(index)
        if entry is None or entry[0] != tag:
            if entry is None or entry[2] == 0:
                self.block_table[index] = [tag, delta, 1]
            else:
                entry[2] -= 1
        elif entry[1] == delta:
            entry[2] = min(CONF_MAX, entry[2] + 1)
        else:
            entry[2] -= 1
            if entry[2] <= 0:
                entry[1] = delta
                entry[2] = 1
        sig_entry = self.cspt.get(self.signature)
        if sig_entry is None:
            self.cspt[self.signature] = [delta, 1]
        elif sig_entry[0] == delta:
            sig_entry[1] = min(CONF_MAX, sig_entry[1] + 1)
        else:
            sig_entry[1] -= 1
            if sig_entry[1] <= 0:
                sig_entry[0] = delta
                sig_entry[1] = 1
        self.signature = ((self.signature << SIG_SHIFT)
                          ^ (delta & SIG_DELTA_MASK)) & SIG_MASK

    def _train_region(self, block: int) -> None:
        """Track region density for GS-I (LRU over rst_entries regions)."""
        region = block // BLOCKS_PER_REGION
        offset = block % BLOCKS_PER_REGION
        entry = self.regions.pop(region, None)
        if entry is None:
            if len(self.regions) >= self.config.rst_entries:
                del self.regions[next(iter(self.regions))]
            self.regions[region] = {"touched": {offset}, "trained": False}
            return
        entry["touched"].add(offset)
        if len(entry["touched"]) >= self.config.region_train_threshold:
            entry["trained"] = True
        self.regions[region] = entry

    def _candidates(self, block: int, mpki: float) -> dict[int, list[int]]:
        """Per-class target blocks, before page policy and RR filtering."""
        out: dict[int, list[int]] = {c: [] for c in PRIORITY}
        region = self.regions.get(block // BLOCKS_PER_REGION)
        if region is not None and region["trained"]:
            degree = self.throttles[FE_GS].degree
            out[FE_GS] = [block + k for k in range(1, degree + 1)]
        current = block
        for _ in range(self.throttles[FE_CS].degree):
            index, tag = self._slot(current)
            entry = self.block_table.get(index)
            if (entry is None or entry[0] != tag
                    or entry[2] < CONF_THRESHOLD or entry[1] == 0):
                break
            current += entry[1]
            out[FE_CS].append(current)
        sig = self.signature
        target = block
        for _ in range(self.throttles[FE_CPLX].degree):
            entry = self.cspt.get(sig)
            if entry is None or entry[1] < CONF_THRESHOLD or entry[0] == 0:
                break
            target += entry[0]
            out[FE_CPLX].append(target)
            sig = ((sig << SIG_SHIFT) ^ (entry[0] & SIG_DELTA_MASK)) & SIG_MASK
        if mpki < self.config.nl_mpki_gate:
            degree = self.throttles[FE_NL].degree
            out[FE_NL] = [block + k for k in range(1, degree + 1)]
        return out

    def step(self, ip: int, mpki: float = 0.0) -> tuple[tuple[int, int], ...]:
        """One fetch-block transition; returns ordered (block, class) pairs."""
        block = ip >> 6
        self.rr.remember(block)
        if self.last_block is not None and block != self.last_block:
            self._train(self.last_block, block)
        self._train_region(block)
        self.last_block = block

        candidates = self._candidates(block, mpki)
        page = block // BLOCKS_PER_PAGE
        blind = self.config.page_policy == "blind"
        requests: list[tuple[int, int]] = []
        claimed = False
        for pf_class in PRIORITY:
            targets = candidates[pf_class]
            if not targets or claimed:
                continue
            for target in targets:
                if target < 0:
                    continue
                if blind and target // BLOCKS_PER_PAGE != page:
                    continue
                if self.rr.should_drop(target):
                    continue
                requests.append((target, pf_class))
            if not self.throttles[pf_class].accuracy < LOW_WATERMARK:
                claimed = True
        return tuple(requests)

    def on_prefetch_fill(self, pf_class: int) -> None:
        """Mirror of the production fill feedback (closes epochs)."""
        throttle = self.throttles.get(pf_class)
        if throttle is not None:
            throttle.on_fill()

    def on_prefetch_hit(self, pf_class: int) -> None:
        """Mirror of the production demand-hit feedback."""
        throttle = self.throttles.get(pf_class)
        if throttle is not None:
            throttle.on_hit()
