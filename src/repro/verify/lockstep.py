"""Lockstep differential testing of IpcpL1 against the oracle models.

:class:`LockstepDiffer` drives the production
:class:`repro.core.ipcp_l1.IpcpL1` and the naive
:class:`repro.verify.oracles.OracleIpcpL1` over the same access stream
and compares the full per-access decision — the ordered list of
``(line, class, metadata-class, metadata-stride)`` requests — stopping
at the first divergence and reporting it with enough context (the
trailing access window, both decision lists) to reproduce and debug it.

Prefetch-accuracy feedback, which in a real run arrives from the cache,
is synthesised deterministically and delivered to both sides
identically: every issued prefetch is treated as filled immediately,
and a later demand access to a prefetched line counts as a hit.  That
keeps the throttle state machines (epoch accuracy, degree stepping,
metadata gating) exercised rather than frozen at their optimistic
reset state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.ipcp_l1 import IpcpL1
from repro.core.metadata import decode_metadata
from repro.prefetchers.base import AccessContext, AccessType
from repro.sim.trace import LOAD, STORE, Trace
from repro.verify.oracles import OracleDecision, OracleIpcpL1

CONTEXT_WINDOW = 8  # trailing accesses reported alongside a divergence

# Default lockstep workloads: streams, mixed strides, irregular pointer
# chasing, complex strides (including negative ones — gcc/mcf/omnetpp
# walk backwards, which several plausible mutations only disturb).
LOCKSTEP_WORKLOADS = (
    "bwaves_like", "gcc_like", "mcf_i_like",
    "wrf_like", "omnetpp_like", "lbm_like",
)
LOCKSTEP_SCALE = 0.2

Decision = tuple[tuple[int, int, int, int], ...]


@dataclass(frozen=True)
class Divergence:
    """First point where production and oracle disagreed."""

    access_index: int  # index among demand accesses (loads/stores)
    ip: int
    addr: int
    production: Decision
    oracle: Decision
    history: tuple[tuple[int, int], ...]  # trailing (ip, addr) window

    def describe(self) -> str:
        lines = [
            f"divergence at demand access #{self.access_index} "
            f"(ip={self.ip:#x}, addr={self.addr:#x}):",
            f"  production: {_fmt(self.production)}",
            f"  oracle:     {_fmt(self.oracle)}",
            "  trailing accesses (ip, addr):",
        ]
        lines += [f"    {ip:#x} {addr:#x}" for ip, addr in self.history]
        return "\n".join(lines)


def _fmt(decision: Decision) -> str:
    if not decision:
        return "(no prefetches)"
    return ", ".join(
        f"line={line:#x} class={pf} meta=({mc},{ms})"
        for line, pf, mc, ms in decision
    )


@dataclass
class LockstepReport:
    """Outcome of one lockstep run."""

    trace_name: str
    accesses: int
    requests: int
    divergence: Divergence | None = None
    matched_decisions: int = 0

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        if self.ok:
            return (
                f"{self.trace_name}: OK — {self.accesses} accesses, "
                f"{self.requests} matching prefetches"
            )
        return f"{self.trace_name}: FAIL\n{self.divergence.describe()}"


@dataclass
class LockstepDiffer:
    """Step production and oracle together; diff every decision.

    ``mpki`` is held constant over the run (the production MPKI input
    comes from the cache, which is absent here); run a trace at several
    values to exercise both sides of the NL gate.
    """

    production: IpcpL1 = field(default_factory=IpcpL1)
    oracle: OracleIpcpL1 = field(default_factory=OracleIpcpL1)
    mpki: float = 20.0

    def run(self, trace: Trace, max_accesses: int | None = None
            ) -> LockstepReport:
        report = LockstepReport(trace_name=trace.name, accesses=0, requests=0)
        history: deque[tuple[int, int]] = deque(maxlen=CONTEXT_WINDOW)
        outstanding: dict[int, int] = {}  # prefetched line -> pf_class
        cycle = 0
        for kind, ip, addr, _ in trace:
            if kind not in (LOAD, STORE):
                continue
            if max_accesses is not None and report.accesses >= max_accesses:
                break
            index = report.accesses
            report.accesses += 1
            history.append((ip, addr))
            cycle += 10

            # Deliver the synthetic demand-hit feedback first, so both
            # sides see identical throttle state for this access.
            line = addr >> 6
            pf_class = outstanding.pop(line, None)
            if pf_class is not None:
                self.production.on_prefetch_hit(line << 6, pf_class)
                self.oracle.on_prefetch_hit(pf_class)

            ctx = AccessContext(
                ip=ip,
                addr=addr,
                cache_hit=False,
                kind=AccessType.LOAD if kind == LOAD else AccessType.STORE,
                cycle=cycle,
                mpki=self.mpki,
            )
            produced = tuple(
                (req.addr >> 6, req.pf_class, *decode_metadata(req.metadata))
                for req in self.production.on_access(ctx)
            )
            expected: OracleDecision = self.oracle.step(ip, addr, self.mpki)

            if produced != expected.requests:
                report.divergence = Divergence(
                    access_index=index,
                    ip=ip,
                    addr=addr,
                    production=produced,
                    oracle=expected.requests,
                    history=tuple(history),
                )
                return report

            report.matched_decisions += 1
            report.requests += len(produced)
            # Every issued prefetch "fills" immediately on both sides.
            for target, pf_class, _, _ in produced:
                outstanding[target] = pf_class
                self.production.on_prefetch_fill(target << 6, pf_class)
                self.oracle.on_prefetch_fill(pf_class)
        return report


def run_lockstep_suite(
    traces: list[Trace] | None = None,
    mpki_values: tuple[float, ...] = (10.0, 60.0),
    max_accesses: int | None = None,
    scale: float = LOCKSTEP_SCALE,
) -> list[LockstepReport]:
    """Diff fresh production/oracle pairs over every (trace, mpki) cell.

    Two MPKI operating points cover both sides of the NL gate (the
    paper's threshold is 50 MPKI at the L1).  With no traces given, the
    :data:`LOCKSTEP_WORKLOADS` suite is generated at ``scale``.
    """
    if traces is None:
        from repro.workloads import spec_trace

        traces = [spec_trace(name, scale) for name in LOCKSTEP_WORKLOADS]
    reports = []
    for trace in traces:
        for mpki in mpki_values:
            differ = LockstepDiffer(
                production=IpcpL1(), oracle=OracleIpcpL1(), mpki=mpki
            )
            report = differ.run(trace, max_accesses=max_accesses)
            report.trace_name = f"{trace.name}@mpki{mpki:g}"
            reports.append(report)
    return reports
