"""Differential verification tooling for the IPCP reproduction.

Three independent safety nets, each catching a different failure mode
of future refactors and performance work:

* :mod:`repro.verify.oracles` + :mod:`repro.verify.lockstep` — small,
  deliberately naive executable models of the paper's mechanisms
  (CS/CPLX/GS classifiers, RR filter, per-class throttles), stepped in
  lockstep with the production :class:`repro.core.ipcp_l1.IpcpL1` and
  diffed per access.  Catches semantic drift in the hot-path code even
  when it barely moves aggregate statistics.
* :mod:`repro.verify.invariants` — a wrapper asserting runtime
  invariants (page containment, RR capacity, metadata width, Table I
  storage budgets, throttle ranges) on every prefetch any
  :class:`~repro.prefetchers.base.Prefetcher` issues; the frontend
  registry gets its own sweep with ITLB capacity audits
  (:func:`~repro.verify.invariants.run_frontend_invariant_sweep`).
* :mod:`repro.verify.frontend_oracle` — the instruction-side twin of
  the oracles: a naive IPCP-I model
  (:class:`~repro.verify.frontend_oracle.OracleIpcpI`) stepped in
  lockstep with :class:`repro.frontend.ipcp_i.IpcpIPrefetcher` in
  ``tests/test_frontend.py``.
* :mod:`repro.verify.golden` — a golden-stats regression harness that
  snapshots key metrics for every registered prefetcher over a fixed
  workload grid into a committed JSON baseline and fails on drift.
* :mod:`repro.verify.cross_engine` — scalar-vs-batched engine
  equivalence: both engines must produce bit-identical
  :class:`~repro.sim.engine.SimResult` values over the golden grid
  plus warm-up/budget edge cases (see docs/engine.md).

``python -m repro verify`` runs all of them; see docs/verification.md.
"""

from repro.verify.cross_engine import (
    CrossEngineReport,
    EngineCell,
    run_cross_engine,
)
from repro.verify.golden import (
    GOLDEN_WORKLOADS,
    collect_golden_stats,
    compare_to_baseline,
    golden_prefetchers,
    load_baseline,
    save_baseline,
)
from repro.verify.frontend_oracle import OracleIpcpI
from repro.verify.invariants import (
    InvariantError,
    InvariantChecker,
    InvariantViolation,
    check_frontend_invariants,
    run_frontend_invariant_sweep,
)
from repro.verify.lockstep import Divergence, LockstepDiffer, LockstepReport
from repro.verify.oracles import OracleDecision, OracleIpcpL1

__all__ = [
    "CrossEngineReport",
    "Divergence",
    "EngineCell",
    "GOLDEN_WORKLOADS",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "LockstepDiffer",
    "LockstepReport",
    "OracleDecision",
    "OracleIpcpI",
    "OracleIpcpL1",
    "check_frontend_invariants",
    "collect_golden_stats",
    "compare_to_baseline",
    "golden_prefetchers",
    "load_baseline",
    "run_cross_engine",
    "run_frontend_invariant_sweep",
    "save_baseline",
]
