"""Differential verification tooling for the IPCP reproduction.

Three independent safety nets, each catching a different failure mode
of future refactors and performance work:

* :mod:`repro.verify.oracles` + :mod:`repro.verify.lockstep` — small,
  deliberately naive executable models of the paper's mechanisms
  (CS/CPLX/GS classifiers, RR filter, per-class throttles), stepped in
  lockstep with the production :class:`repro.core.ipcp_l1.IpcpL1` and
  diffed per access.  Catches semantic drift in the hot-path code even
  when it barely moves aggregate statistics.
* :mod:`repro.verify.invariants` — a wrapper asserting runtime
  invariants (page containment, RR capacity, metadata width, Table I
  storage budgets, throttle ranges) on every prefetch any
  :class:`~repro.prefetchers.base.Prefetcher` issues.
* :mod:`repro.verify.golden` — a golden-stats regression harness that
  snapshots key metrics for every registered prefetcher over a fixed
  workload grid into a committed JSON baseline and fails on drift.
* :mod:`repro.verify.cross_engine` — scalar-vs-batched engine
  equivalence: both engines must produce bit-identical
  :class:`~repro.sim.engine.SimResult` values over the golden grid
  plus warm-up/budget edge cases (see docs/engine.md).

``python -m repro verify`` runs all of them; see docs/verification.md.
"""

from repro.verify.cross_engine import (
    CrossEngineReport,
    EngineCell,
    run_cross_engine,
)
from repro.verify.golden import (
    GOLDEN_WORKLOADS,
    collect_golden_stats,
    compare_to_baseline,
    golden_prefetchers,
    load_baseline,
    save_baseline,
)
from repro.verify.invariants import (
    InvariantError,
    InvariantChecker,
    InvariantViolation,
)
from repro.verify.lockstep import Divergence, LockstepDiffer, LockstepReport
from repro.verify.oracles import OracleDecision, OracleIpcpL1

__all__ = [
    "CrossEngineReport",
    "Divergence",
    "EngineCell",
    "GOLDEN_WORKLOADS",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "LockstepDiffer",
    "LockstepReport",
    "OracleDecision",
    "OracleIpcpL1",
    "collect_golden_stats",
    "compare_to_baseline",
    "golden_prefetchers",
    "load_baseline",
    "run_cross_engine",
    "save_baseline",
]
