"""Golden-stats regression harness.

Snapshots the key simulation metrics — IPC, coverage, accuracy,
prefetch counts, DRAM traffic, plus every prefetcher counter — for a
fixed (workload x registered-prefetcher) grid into a committed JSON
baseline, and compares fresh runs against it.  The simulator is fully
deterministic, so with unchanged code the comparison is *exact*; any
drift is a semantic change that either is a bug or deserves an explicit
``repro verify --update-baseline`` commit.

Runs go through :class:`repro.runner.SimulationRunner`, so a verify
pass fans out across worker processes and replays from the persistent
result cache; the cache key already includes a digest of the simulator
sources, which means a mutated ``repro.core`` can never satisfy the
baseline from stale cached results.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ReproError
from repro.prefetchers import available_prefetchers
from repro.runner import SimulationRunner, levels_job
from repro.sim.engine import SimResult
from repro.workloads import spec_trace

BASELINE_SCHEMA = 1
DEFAULT_BASELINE_PATH = os.path.join("tests", "data", "golden_stats.json")

# The grid: one workload per dominant pattern class (stream / mixed
# strides / irregular pointer chasing / complex strides) so every
# classifier contributes, times every registered configuration.
GOLDEN_WORKLOADS = ("bwaves_like", "gcc_like", "mcf_i_like", "wrf_like")
GOLDEN_SCALE = 0.15


def golden_prefetchers() -> list[str]:
    """Every registered configuration (the baseline must cover them all)."""
    return available_prefetchers()


def _cell_key(workload: str, config: str) -> str:
    return f"{workload}/{config}"


def cell_metrics(result: SimResult) -> dict:
    """Flatten one :class:`SimResult` into the golden metric dict."""
    metrics: dict[str, float | int] = {
        "ipc": result.ipc,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "dram_reads": result.dram_reads,
        "dram_writes": result.dram_writes,
        "l1_demand_misses": result.l1.demand_misses,
        "l1_pf_issued": result.l1.pf_issued,
        "l1_pf_useful": result.l1.pf_useful,
        "l1_coverage": result.l1.coverage,
        "l1_accuracy": result.l1.accuracy,
        "l2_pf_issued": result.l2.pf_issued,
        "llc_demand_misses": result.llc.demand_misses,
    }
    for level in ("l1_prefetcher", "l2_prefetcher"):
        summary = getattr(result, level)
        if summary is None:
            continue
        prefix = "ctr_l1." if level == "l1_prefetcher" else "ctr_l2."
        for counter, value in summary.counters:
            metrics[prefix + counter] = value
    return metrics


def collect_golden_stats(
    workloads: tuple[str, ...] = GOLDEN_WORKLOADS,
    prefetchers: list[str] | None = None,
    scale: float = GOLDEN_SCALE,
    runner: SimulationRunner | None = None,
) -> dict:
    """Simulate the grid and return a baseline document."""
    if prefetchers is None:
        prefetchers = golden_prefetchers()
    runner = runner or SimulationRunner()
    traces = [spec_trace(name, scale) for name in workloads]
    cells = [
        (trace, config) for trace in traces for config in prefetchers
    ]
    specs = [levels_job(trace, config) for trace, config in cells]
    results = runner.run(specs)
    return {
        "schema": BASELINE_SCHEMA,
        "scale": scale,
        "workloads": list(workloads),
        "prefetchers": list(prefetchers),
        "cells": {
            _cell_key(trace.name, config): cell_metrics(result)
            for (trace, config), result in zip(cells, results)
        },
    }


def save_baseline(document: dict, path: str) -> None:
    """Write a baseline document as stable, diff-friendly JSON."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> dict:
    """Load a golden-stats baseline document, failing with a hint."""
    try:
        with open(path) as fh:
            document = json.load(fh)
    except FileNotFoundError:
        raise ReproError(
            f"golden baseline {path!r} not found; create it with "
            "`python -m repro verify --update-baseline`"
        ) from None
    except json.JSONDecodeError as error:
        raise ReproError(f"golden baseline {path!r} is corrupt: {error}") from None
    if document.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"golden baseline {path!r} has schema "
            f"{document.get('schema')!r}, expected {BASELINE_SCHEMA}"
        )
    return document


@dataclass(frozen=True)
class Drift:
    """One metric that moved outside tolerance (or a coverage gap)."""

    cell: str
    metric: str
    baseline: float | int | None
    current: float | int | None
    relative: float

    def describe(self) -> str:
        """Render the drifted metric as one human-readable line."""
        if self.baseline is None:
            return f"{self.cell}: {self.metric} missing from baseline"
        if self.current is None:
            return f"{self.cell}: {self.metric} missing from current run"
        return (
            f"{self.cell}: {self.metric} {self.baseline!r} -> "
            f"{self.current!r} (drift {self.relative:.3%})"
        )


def _relative(baseline, current) -> float:
    if baseline == current:
        return 0.0
    denom = max(abs(baseline), abs(current), 1e-12)
    return abs(current - baseline) / denom


def compare_to_baseline(
    current: dict, baseline: dict, rel_tol: float = 0.0
) -> list[Drift]:
    """Diff two baseline documents; empty list means no drift.

    ``rel_tol`` is the allowed relative drift per metric (0.0 = exact,
    the right default for a deterministic simulator).  Cells present in
    one document but not the other are always drift — a newly
    registered prefetcher must be added to the baseline explicitly.
    """
    drifts: list[Drift] = []
    base_cells: dict = baseline["cells"]
    cur_cells: dict = current["cells"]
    for cell in sorted(set(base_cells) | set(cur_cells)):
        base = base_cells.get(cell)
        cur = cur_cells.get(cell)
        if base is None or cur is None:
            drifts.append(Drift(
                cell=cell, metric="(cell)",
                baseline=None if base is None else 0,
                current=None if cur is None else 0,
                relative=1.0,
            ))
            continue
        for metric in sorted(set(base) | set(cur)):
            if metric not in base or metric not in cur:
                drifts.append(Drift(
                    cell=cell, metric=metric,
                    baseline=base.get(metric), current=cur.get(metric),
                    relative=1.0,
                ))
                continue
            relative = _relative(base[metric], cur[metric])
            if relative > rel_tol:
                drifts.append(Drift(
                    cell=cell, metric=metric,
                    baseline=base[metric], current=cur[metric],
                    relative=relative,
                ))
    return drifts
