"""Runtime invariant checking for any :class:`Prefetcher`.

:class:`InvariantChecker` wraps a prefetcher and audits every response
(and, for IPCP, the internal structures) on every access:

* every prefetch stays within the trigger's 4 KB page (unless the
  wrapped prefetcher is declared cross-page, e.g. temporal ones);
* request addresses are non-negative, line-meaningful integers;
* metadata fits the 9-bit wire format and its decoded stride respects
  the symmetric [-63, +63] saturation policy (the wire's -64 must never
  be produced by an encoder);
* per-access bursts stay bounded;
* IPCP structure audits: the RR filter never exceeds its entry count,
  per-class throttle accuracy stays in [0, 1] and degree in
  [1, default], CSPT confidences stay 2-bit, the RST stays within its
  capacity with direction counters in 6-bit range, and the declared
  ``storage_bits`` match the Table I recomputation
  (:func:`repro.core.storage.ipcp_storage_report`).

The wrapper is a drop-in :class:`Prefetcher`: it can sit inside a full
simulation (every fill/hit callback is forwarded) or be driven directly
over a trace with :func:`check_invariants`.

The frontend (instruction-side) configurations get the same treatment
via :func:`check_frontend_invariants` /
:func:`run_frontend_invariant_sweep`: the generic request audits plus
IPCP-I structure bounds, the TLB-blind page-containment guarantee, and
an ITLB capacity audit (demand walks *and* prefetch fills must never
push residency past the configured entry counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ip_table import STRIDE_MAX, STRIDE_MIN
from repro.core.ipcp_l1 import IpcpL1
from repro.core.ipcp_l2 import IpcpL2
from repro.core.metadata import decode_metadata
from repro.core.storage import ipcp_storage_report
from repro.errors import ReproError
from repro.params import LINES_PER_PAGE
from repro.prefetchers.base import AccessContext, AccessType, Prefetcher
from repro.sim.trace import LOAD, STORE, Trace

MAX_BURST = 64  # requests from one access beyond which we call it runaway

# Registered configurations whose prefetchers legitimately cross 4 KB
# pages (temporal prefetchers predict physical successors).
CROSS_PAGE_PREFETCHERS = frozenset(
    {"isb", "domino", "triage", "ipcp_temporal"}
)


class InvariantError(ReproError):
    """Raised in strict mode when a runtime invariant is violated."""


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant violation, with trigger context."""

    invariant: str
    detail: str
    access_index: int
    ip: int = 0
    addr: int = 0

    def describe(self) -> str:
        """Render the violation as one human-readable line."""
        return (
            f"[{self.invariant}] access #{self.access_index} "
            f"ip={self.ip:#x} addr={self.addr:#x}: {self.detail}"
        )


class InvariantChecker(Prefetcher):
    """Wrap ``inner`` and assert runtime invariants on every issue."""

    def __init__(
        self,
        inner: Prefetcher,
        allow_cross_page: bool = False,
        strict: bool = False,
    ) -> None:
        super().__init__(
            name=inner.name, storage_bits=inner.storage_bits
        )
        self.inner = inner
        self.allow_cross_page = allow_cross_page
        self.strict = strict
        self.violations: list[InvariantViolation] = []
        self.accesses = 0
        self.requests = 0
        self.stats = inner.stats  # share the counter dict: transparent wrap

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violations

    def by_invariant(self) -> dict[str, int]:
        """Violation counts keyed by invariant name."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    # ---------------------------------------------------------------- #
    # Prefetcher interface (transparent delegation + audit)
    # ---------------------------------------------------------------- #

    def on_access(self, ctx: AccessContext):
        """Delegate to ``inner`` and audit the requests it returns."""
        index = self.accesses
        self.accesses += 1
        try:
            requests = self.inner.on_access(ctx)
        except Exception as error:  # noqa: BLE001 — audit, don't mask where
            self._flag("no_exceptions", repr(error), index, ctx)
            if self.strict:
                raise
            return []
        self.requests += len(requests)
        self._audit_requests(ctx, requests, index)
        self._audit_structures(index, ctx)
        return requests

    def on_fill(self, addr, was_prefetch, metadata, evicted_addr) -> None:
        """Forward the fill event to ``inner`` unchanged."""
        self.inner.on_fill(addr, was_prefetch, metadata, evicted_addr)

    def on_prefetch_fill(self, addr: int, pf_class: int) -> None:
        """Forward the prefetch-fill event to ``inner`` unchanged."""
        self.inner.on_prefetch_fill(addr, pf_class)

    def on_prefetch_hit(self, addr: int, pf_class: int) -> None:
        """Forward the prefetch-hit event to ``inner`` unchanged."""
        self.inner.on_prefetch_hit(addr, pf_class)

    def summary(self):
        """Return ``inner``'s summary — the wrap adds no counters."""
        return self.inner.summary()

    # ---------------------------------------------------------------- #
    # Audits
    # ---------------------------------------------------------------- #

    def _flag(self, invariant: str, detail: str, index: int,
              ctx: AccessContext | None) -> None:
        violation = InvariantViolation(
            invariant=invariant,
            detail=detail,
            access_index=index,
            ip=ctx.ip if ctx is not None else 0,
            addr=ctx.addr if ctx is not None else 0,
        )
        self.violations.append(violation)
        if self.strict:
            raise InvariantError(violation.describe())

    def _audit_requests(self, ctx: AccessContext, requests, index: int) -> None:
        if len(requests) > MAX_BURST:
            self._flag(
                "burst_bound",
                f"{len(requests)} requests from one access (> {MAX_BURST})",
                index, ctx,
            )
        trigger_page = (ctx.addr >> 6) // LINES_PER_PAGE
        for request in requests:
            addr = request.addr
            if not isinstance(addr, int) or addr < 0:
                self._flag("address_domain", f"addr={addr!r}", index, ctx)
                continue
            if not self.allow_cross_page:
                page = (addr >> 6) // LINES_PER_PAGE
                if page != trigger_page:
                    self._flag(
                        "page_containment",
                        f"trigger page {trigger_page:#x} -> "
                        f"request page {page:#x}",
                        index, ctx,
                    )
            if not 0 <= request.metadata < 512:
                self._flag(
                    "metadata_width",
                    f"metadata {request.metadata} exceeds 9 bits",
                    index, ctx,
                )
            else:
                _, stride = decode_metadata(request.metadata)
                if not STRIDE_MIN <= stride <= STRIDE_MAX:
                    self._flag(
                        "stride_saturation",
                        f"metadata stride {stride} outside "
                        f"[{STRIDE_MIN}, {STRIDE_MAX}]",
                        index, ctx,
                    )
            if request.pf_class < 0:
                self._flag(
                    "class_domain", f"pf_class={request.pf_class}", index, ctx
                )

    def _audit_structures(self, index: int, ctx: AccessContext) -> None:
        inner = self.inner
        if isinstance(inner, IpcpL1):
            self._audit_ipcp_l1(inner, index, ctx)
        elif isinstance(inner, IpcpL2):
            self._audit_ipcp_l2(inner, index, ctx)

    def _audit_ipcp_l1(self, pf: IpcpL1, index: int, ctx) -> None:
        cfg = pf.config
        if len(pf.rr_filter) > cfg.rr_entries:
            self._flag(
                "rr_capacity",
                f"RR filter holds {len(pf.rr_filter)} > {cfg.rr_entries}",
                index, ctx,
            )
        if len(pf.rst._table) > cfg.rst_entries:
            self._flag(
                "rst_capacity",
                f"RST holds {len(pf.rst._table)} > {cfg.rst_entries}",
                index, ctx,
            )
        for entry in pf.rst._table.values():
            if not 0 <= entry.pos_neg_count <= 63:
                self._flag(
                    "rst_direction_counter",
                    f"pos/neg counter {entry.pos_neg_count} outside 6 bits",
                    index, ctx,
                )
        for pf_class, throttle in pf.throttles.items():
            if not 0.0 <= throttle.accuracy <= 1.0:
                self._flag(
                    "epoch_accuracy",
                    f"{pf_class.name} accuracy {throttle.accuracy} "
                    "outside [0, 1]",
                    index, ctx,
                )
            if not 1 <= throttle.degree <= throttle.default_degree:
                self._flag(
                    "throttle_degree",
                    f"{pf_class.name} degree {throttle.degree} outside "
                    f"[1, {throttle.default_degree}]",
                    index, ctx,
                )
        for entry in pf.cspt._table:
            if not 0 <= entry.confidence <= 3:
                self._flag(
                    "cspt_confidence",
                    f"CSPT confidence {entry.confidence} outside 2 bits",
                    index, ctx,
                )
                break
        self._audit_l1_storage(pf, index, ctx)

    def _audit_l1_storage(self, pf: IpcpL1, index: int, ctx) -> None:
        cfg = pf.config
        report = ipcp_storage_report(
            ip_table_entries=cfg.ip_table_entries,
            cspt_entries=cfg.cspt_entries,
            rst_entries=cfg.rst_entries,
            rr_entries=cfg.rr_entries,
        )
        expected = report.l1_bits
        if pf.temporal is not None:
            expected += pf.temporal.storage_bits
        if pf.storage_bits != expected:
            self._flag(
                "storage_budget",
                f"declared {pf.storage_bits} bits, Table I recomputation "
                f"says {expected}",
                index, ctx,
            )

    def _audit_ipcp_l2(self, pf: IpcpL2, index: int, ctx) -> None:
        report = ipcp_storage_report(l2_ip_table_entries=pf.entries)
        if pf.storage_bits != report.l2_bits:
            self._flag(
                "storage_budget",
                f"declared {pf.storage_bits} bits, Table I recomputation "
                f"says {report.l2_bits}",
                index, ctx,
            )
        for entry in pf._table:
            if not STRIDE_MIN <= entry.stride <= STRIDE_MAX:
                self._flag(
                    "stride_saturation",
                    f"L2 bookkeeping stride {entry.stride} outside "
                    f"[{STRIDE_MIN}, {STRIDE_MAX}]",
                    index, ctx,
                )
                break


@dataclass
class InvariantReport:
    """Result of driving one wrapped prefetcher over one trace."""

    prefetcher_name: str
    trace_name: str
    accesses: int
    requests: int
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run recorded zero violations."""
        return not self.violations

    def describe(self) -> str:
        """One-line verdict, plus the first ten violations if any."""
        status = "OK" if self.ok else "VIOLATIONS"
        head = (
            f"{self.prefetcher_name} on {self.trace_name}: {status} — "
            f"{self.accesses} accesses, {self.requests} requests"
        )
        if self.ok:
            return head
        return head + "\n" + "\n".join(
            "  " + v.describe() for v in self.violations[:10]
        )


def check_invariants(
    prefetcher: Prefetcher,
    trace: Trace,
    allow_cross_page: bool = False,
    mpki: float = 20.0,
    with_feedback: bool = True,
) -> InvariantReport:
    """Drive ``prefetcher`` (wrapped) over ``trace`` and collect violations.

    ``with_feedback`` synthesises the cache's fill/hit callbacks the
    same way the lockstep differ does — fills immediately, hits when a
    later demand touches a prefetched line — so throttle state machines
    run through real epochs while being audited.
    """
    checker = InvariantChecker(
        prefetcher, allow_cross_page=allow_cross_page, strict=False
    )
    outstanding: dict[int, int] = {}
    cycle = 0
    for kind, ip, addr, _ in trace:
        if kind not in (LOAD, STORE):
            continue
        cycle += 10
        line = addr >> 6
        if with_feedback:
            pf_class = outstanding.pop(line, None)
            if pf_class is not None:
                checker.on_prefetch_hit(line << 6, pf_class)
        ctx = AccessContext(
            ip=ip,
            addr=addr,
            cache_hit=False,
            kind=AccessType.LOAD if kind == LOAD else AccessType.STORE,
            cycle=cycle,
            mpki=mpki,
        )
        requests = checker.on_access(ctx)
        if with_feedback:
            for request in requests:
                outstanding[request.addr >> 6] = request.pf_class
                checker.on_prefetch_fill(request.addr, request.pf_class)
    return InvariantReport(
        prefetcher_name=prefetcher.name,
        trace_name=trace.name,
        accesses=checker.accesses,
        requests=checker.requests,
        violations=checker.violations,
    )


def run_invariant_sweep(
    traces: list[Trace],
    prefetcher_names: list[str] | None = None,
) -> list[InvariantReport]:
    """Audit every registered configuration, at every level, over
    every trace.

    Returns one report per (configuration, level, trace) cell; callers
    fail when any report is not :attr:`InvariantReport.ok`.
    """
    from repro.prefetchers import available_prefetchers, make_prefetcher

    if prefetcher_names is None:
        prefetcher_names = available_prefetchers()
    reports: list[InvariantReport] = []
    for name in prefetcher_names:
        config = make_prefetcher(name)
        allow = name in CROSS_PAGE_PREFETCHERS
        for level, factory in config.items():
            for trace in traces:
                report = check_invariants(
                    factory(), trace, allow_cross_page=allow
                )
                report.prefetcher_name = f"{name}@{level}"
                reports.append(report)
    return reports


# ------------------------------------------------------------------ #
# Frontend (instruction-side) invariants
# ------------------------------------------------------------------ #

# Frontend configurations that legitimately cross 4 KB pages: the
# TLB-aware IPCP-I (the engine charges an ITLB prefetch fill for it)
# and MANA-lite, whose recorded fetch paths span call chains.  The
# blind IPCP-I variant and next-line-I must stay page-contained —
# that containment IS the invariant under test.
FRONTEND_CROSS_PAGE_PREFETCHERS = frozenset({"ipcp_i", "mana_lite"})


def _audit_frontend_structures(checker: InvariantChecker, itlb,
                               ctx: AccessContext) -> None:
    """Per-transition structure audits for frontend prefetchers."""
    from repro.frontend.ipcp_i import CONF_MAX, IpcpIPrefetcher

    index = checker.accesses - 1
    params = itlb.params
    dtlb_resident, stlb_resident = itlb.resident()
    if dtlb_resident > params.dtlb_entries:
        checker._flag(
            "itlb_capacity",
            f"ITLB holds {dtlb_resident} > {params.dtlb_entries}",
            index, ctx,
        )
    if stlb_resident > params.stlb_entries:
        checker._flag(
            "stlb_capacity",
            f"STLB holds {stlb_resident} > {params.stlb_entries}",
            index, ctx,
        )
    inner = checker.inner
    if not isinstance(inner, IpcpIPrefetcher):
        return
    cfg = inner.config
    if len(inner.rr_filter) > cfg.rr_entries:
        checker._flag(
            "rr_capacity",
            f"RR filter holds {len(inner.rr_filter)} > {cfg.rr_entries}",
            index, ctx,
        )
    if len(inner._rst) > cfg.rst_entries:
        checker._flag(
            "rst_capacity",
            f"RST holds {len(inner._rst)} > {cfg.rst_entries}",
            index, ctx,
        )
    # BT entries are [tag, delta, conf]; CSPT entries are [delta, conf].
    for table, slot, invariant in ((inner._bt, 2, "bt_confidence"),
                                   (inner._cspt, 1, "cspt_confidence")):
        for entry in table:
            if entry is not None and not 0 <= entry[slot] <= CONF_MAX:
                checker._flag(
                    invariant,
                    f"confidence {entry[slot]} outside [0, {CONF_MAX}]",
                    index, ctx,
                )
                break
    for pf_class, throttle in inner.throttles.items():
        if not 0.0 <= throttle.accuracy <= 1.0:
            checker._flag(
                "epoch_accuracy",
                f"class {pf_class} accuracy {throttle.accuracy} "
                "outside [0, 1]",
                index, ctx,
            )
        if not 1 <= throttle.degree <= throttle.default_degree:
            checker._flag(
                "throttle_degree",
                f"class {pf_class} degree {throttle.degree} outside "
                f"[1, {throttle.default_degree}]",
                index, ctx,
            )


def check_frontend_invariants(
    prefetcher: Prefetcher,
    trace: Trace,
    allow_cross_page: bool = False,
) -> InvariantReport:
    """Drive a frontend prefetcher over ``trace``'s instruction stream.

    Every record contributes its ``ip``; the prefetcher sees one access
    per fetch-block transition (the frontend engine's access model) with
    a running miss-rate proxy in ``ctx.mpki``.  Fill/hit feedback is
    synthesised the same way :func:`check_invariants` does it, and an
    :class:`~repro.frontend.model.Itlb` is fed both the demand page
    stream and the cross-page prefetch fills so its capacity invariants
    are exercised under prefetch pressure, not just demand walks.
    """
    from repro.frontend.model import Itlb

    checker = InvariantChecker(
        prefetcher, allow_cross_page=allow_cross_page, strict=False
    )
    itlb = Itlb()
    outstanding: dict[int, int] = {}
    last_block: int | None = None
    cycle = 0
    misses = 0
    instructions = 0
    for _, ip, _, _ in trace:
        instructions += 1
        block = ip >> 6
        if block == last_block:
            continue
        last_block = block
        cycle += 1
        page = block // LINES_PER_PAGE
        itlb.access(page)
        pf_class = outstanding.pop(block, None)
        covered = pf_class is not None
        if covered:
            checker.on_prefetch_hit(block << 6, pf_class)
        else:
            misses += 1
        ctx = AccessContext(
            ip=ip,
            addr=ip,
            cache_hit=covered,
            kind=AccessType.LOAD,
            cycle=cycle,
            mpki=misses * 1000.0 / instructions,
        )
        requests = checker.on_access(ctx)
        for request in requests:
            target = request.addr >> 6
            outstanding[target] = request.pf_class
            target_page = target // LINES_PER_PAGE
            if target_page != page:
                itlb.prefetch_fill(target_page)
            checker.on_prefetch_fill(request.addr, request.pf_class)
        _audit_frontend_structures(checker, itlb, ctx)
    return InvariantReport(
        prefetcher_name=prefetcher.name,
        trace_name=trace.name,
        accesses=checker.accesses,
        requests=checker.requests,
        violations=checker.violations,
    )


def run_frontend_invariant_sweep(
    traces: list[Trace],
    prefetcher_names: list[str] | None = None,
) -> list[InvariantReport]:
    """Audit every registered frontend configuration over every trace.

    The frontend registry is separate from the data-side one
    (:mod:`repro.frontend.registry`), so this sweep is the frontend
    twin of :func:`run_invariant_sweep`; reports are named
    ``<config>@l1i``.
    """
    from repro.frontend import (
        available_frontend_prefetchers,
        make_frontend_prefetcher,
    )

    if prefetcher_names is None:
        prefetcher_names = available_frontend_prefetchers()
    reports: list[InvariantReport] = []
    for name in prefetcher_names:
        allow = name in FRONTEND_CROSS_PAGE_PREFETCHERS
        for trace in traces:
            prefetcher = make_frontend_prefetcher(name)
            if prefetcher is None:
                continue
            report = check_frontend_invariants(
                prefetcher, trace, allow_cross_page=allow
            )
            report.prefetcher_name = f"{name}@l1i"
            reports.append(report)
    return reports
