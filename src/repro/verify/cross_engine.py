"""Cross-engine equivalence gate: scalar vs batched, bit for bit.

The batched columnar engine (:mod:`repro.sim.batched`) is a pure
performance play — it must never change a result.  This harness runs
the golden (workload x registered-prefetcher) grid through *both*
engines with freshly built prefetchers and demands
``SimResult.__eq__`` on every cell, which covers timing (instructions,
cycles), every cache-stats field, DRAM traffic and the full prefetcher
counter summaries.  A handful of edge cells stress the boundaries the
fused loop special-cases: zero warm-up, warm-up covering the whole
trace, an ROI instruction budget, and a tiny columnar gather window.

The scalar engine is the oracle; the batched engine is on trial.  A
cell where the batched engine *fell back* to scalar still counts as a
pass (the fallback is part of its contract), but the report says so —
CI asserts a minimum fused coverage so the fast path cannot silently
rot into "always fall back".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prefetchers import make_prefetcher
from repro.sim.batched import get_last_run_info, simulate_batched
from repro.sim.engine import simulate
from repro.verify.golden import GOLDEN_SCALE, GOLDEN_WORKLOADS, golden_prefetchers
from repro.workloads import spec_trace

#: (warmup, max_instructions, chunk_records) tuples exercised on one
#: workload/config pair beyond the default-parameter grid.
EDGE_CASES = (
    (0, None, 8192),
    (10_000_000, None, 8192),
    (None, 1_000, 8192),
    (17, 2_500, 64),
)


@dataclass(frozen=True)
class EngineCell:
    """Outcome of one scalar-vs-batched comparison cell."""

    workload: str
    config: str
    label: str
    fused: bool
    reason: str | None
    match: bool

    def describe(self) -> str:
        """One human-readable report line for this cell."""
        path = "fused" if self.fused else f"fallback ({self.reason})"
        verdict = "ok" if self.match else "MISMATCH"
        return f"{self.label}: {verdict} [{path}]"


@dataclass(frozen=True)
class CrossEngineReport:
    """Aggregate verdict of a cross-engine verification run."""

    cells: tuple[EngineCell, ...]

    @property
    def mismatches(self) -> tuple[EngineCell, ...]:
        """Cells where the two engines disagreed (must be empty)."""
        return tuple(cell for cell in self.cells if not cell.match)

    @property
    def fused_cells(self) -> int:
        """How many cells actually exercised the fused columnar loop."""
        return sum(1 for cell in self.cells if cell.fused)

    @property
    def ok(self) -> bool:
        """True when every cell matched bit for bit."""
        return not self.mismatches

    def describe(self) -> str:
        """Multi-line summary: totals plus every mismatching cell."""
        lines = [
            f"cross-engine: {len(self.cells)} cells, "
            f"{self.fused_cells} fused, "
            f"{len(self.cells) - self.fused_cells} fallback, "
            f"{len(self.mismatches)} mismatches"
        ]
        lines.extend(cell.describe() for cell in self.mismatches)
        return "\n".join(lines)


def _build_levels(config: str):
    """Fresh (l1, l2, llc) prefetcher instances for one registered config."""
    levels = make_prefetcher(config)
    return tuple(
        levels[key]() if key in levels and levels[key] else None
        for key in ("l1", "l2", "llc")
    )


def _compare(trace, config: str, label: str, warmup=None,
             max_instructions=None, chunk_records=8192) -> EngineCell:
    """Run one cell under both engines and diff the results."""
    scalar = simulate(
        trace, *_build_levels(config),
        warmup=warmup, max_instructions=max_instructions,
    )
    batched = simulate_batched(
        trace, *_build_levels(config),
        warmup=warmup, max_instructions=max_instructions,
        chunk_records=chunk_records,
    )
    info = get_last_run_info()
    return EngineCell(
        workload=trace.name,
        config=config,
        label=label,
        fused=bool(info["fused"]),
        reason=info["reason"],
        match=scalar == batched,
    )


def _ingest_round_trip_trace(trace):
    """A trace round-tripped through the ingestion layer (in memory).

    Serializes the workload to canonical k6 text, then strict-ingests
    it back — the exact path an externally supplied trace takes into
    the simulator.  The ingested twin has only the memory records
    (k6 carries no branches) with the synthetic k6 instruction
    pointers, so it is a *different* cell from the source workload;
    what the gate demands is that both engines agree on it too.
    """
    from repro.ingest import ingest_k6
    from repro.ingest.k6 import K6_CYCLE_STEP, _COMMAND_FOR

    lines = []
    for kind, _ip, addr, _dep in trace:
        command = _COMMAND_FOR.get(kind)
        if command is None:
            continue
        lines.append(f"0x{addr:x} {command} "
                     f"{len(lines) * K6_CYCLE_STEP}\n")
    payload = "".join(lines).encode("ascii")
    ingested, report = ingest_k6(payload, name=f"{trace.name}.k6")
    assert report.records == len(lines)
    return ingested


def run_cross_engine(
    workloads: tuple[str, ...] = GOLDEN_WORKLOADS,
    prefetchers: list[str] | None = None,
    scale: float = GOLDEN_SCALE,
    edge_cases: bool = True,
) -> CrossEngineReport:
    """Verify scalar/batched equivalence over the golden grid.

    Every (workload, config) cell is simulated twice — once per engine,
    each time with freshly constructed prefetchers so no state leaks
    between runs — and the two :class:`repro.sim.engine.SimResult`
    values must compare equal.  One extra cell round-trips the first
    workload through the k6 ingestion layer so externally ingested
    traces are covered by the same equivalence demand.  With
    ``edge_cases`` the harness also sweeps the warm-up/budget/chunking
    boundary combinations in :data:`EDGE_CASES` on the first workload
    under the full IPCP configuration.
    """
    if prefetchers is None:
        prefetchers = golden_prefetchers()
    cells: list[EngineCell] = []
    traces = [spec_trace(name, scale) for name in workloads]
    for trace in traces:
        for config in prefetchers:
            cells.append(_compare(trace, config, f"{trace.name}/{config}"))
    if traces:
        ingested = _ingest_round_trip_trace(traces[0])
        cells.append(_compare(
            ingested, "ipcp", f"{ingested.name}/ipcp[ingest-round-trip]",
        ))
    if edge_cases and traces:
        trace = traces[0]
        for warmup, budget, chunk in EDGE_CASES:
            label = (f"{trace.name}/ipcp"
                     f"[warmup={warmup},max={budget},chunk={chunk}]")
            cells.append(_compare(
                trace, "ipcp", label,
                warmup=warmup, max_instructions=budget,
                chunk_records=chunk,
            ))
    return CrossEngineReport(cells=tuple(cells))
