"""Naive executable oracle models of the IPCP L1 mechanisms.

These are *independent* re-implementations of the paper's Section IV-V
mechanisms, written for obviousness rather than speed: plain lists and
dicts, no shared code with :mod:`repro.core` beyond the published
constants.  The production :class:`repro.core.ipcp_l1.IpcpL1` inlines,
caches and hoists for throughput; the oracle spells every rule out.
Stepping both in lockstep (:mod:`repro.verify.lockstep`) and diffing
their per-access decisions is the safety net that lets future perf PRs
rewrite the hot path freely.

Each mechanism is its own small class so a divergence can be localised:

* :class:`OracleRrFilter` — 32-entry FIFO of 12-bit partial tags;
* :class:`OracleIpTable` — 64-entry direct-mapped table with the
  hysteresis replacement duel;
* :class:`OracleCsClassifier` — constant-stride confidence training;
* :class:`OracleCplxClassifier` — signature-indexed CSPT;
* :class:`OracleGsClassifier` — region stream table with density,
  direction and tentative promotion;
* :class:`OracleThrottle` — 256-fill epoch accuracy/degree controller;
* :class:`OracleIpcpL1` — the bouquet walk tying them together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Published constants only — geometry from the paper, not from the
# production implementation's internals.
LINE_SHIFT = 6
LINES_PER_PAGE = 64  # 4 KB page / 64 B lines
LINES_PER_REGION = 32  # 2 KB GS region
STRIDE_LIMIT = 63  # symmetric 7-bit saturation (see core.ip_table)
SIG_MASK = 0x7F
EPOCH_FILLS = 256
HIGH_WATERMARK = 0.75
LOW_WATERMARK = 0.40

CLASS_NONE, CLASS_CS, CLASS_CPLX, CLASS_GS, CLASS_NL = 0, 1, 2, 3, 4
META_NONE, META_CS, META_GS, META_NL = 0, 1, 2, 3

# Bouquet priority and the 2-bit metadata class each bouquet class
# encodes to (CPLX is never replayed at the L2, so it sends "none").
PRIORITY = (CLASS_GS, CLASS_CS, CLASS_CPLX, CLASS_NL)
META_OF_CLASS = {
    CLASS_CS: META_CS,
    CLASS_GS: META_GS,
    CLASS_NL: META_NL,
    CLASS_CPLX: META_NONE,
}


def saturate_stride(stride: int) -> int:
    """Symmetric [-63, +63] saturation of a line stride."""
    if stride > STRIDE_LIMIT:
        return STRIDE_LIMIT
    if stride < -STRIDE_LIMIT:
        return -STRIDE_LIMIT
    return stride


@dataclass(frozen=True)
class OracleDecision:
    """What the oracle decided for one access: the ordered request list.

    Each element is ``(line, pf_class, meta_class, meta_stride)`` — the
    prefetched cache line, the bouquet class that claimed it, and the
    decoded content of the 9-bit metadata packet it would carry.
    """

    requests: tuple[tuple[int, int, int, int], ...]


class OracleRrFilter:
    """Recent-request filter: FIFO list of 12-bit partial line tags."""

    def __init__(self, entries: int = 32, tag_bits: int = 12) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.tags: list[int] = []

    def tag_of(self, line: int) -> int:
        return (line ^ (line >> 12)) & ((1 << self.tag_bits) - 1)

    def remember(self, line: int) -> None:
        self.tags.append(self.tag_of(line))
        while len(self.tags) > self.entries:
            self.tags.pop(0)

    def should_drop(self, line: int) -> bool:
        """Probe-then-record: True when the prefetch must be dropped."""
        if self.tag_of(line) in self.tags:
            return True
        self.remember(line)
        return False


@dataclass
class _IpState:
    """Everything the shared IP-table entry remembers about one IP."""

    tag: int
    valid: bool = True
    seen: bool = True
    last_vpage2: int = 0  # 2 LSBs of the last virtual page
    last_offset: int = 0  # last line offset within the page (0..63)
    last_line: int = 0  # full last line (simulation shadow, 0 = unseen)
    stride: int = 0
    confidence: int = 0
    stream_valid: bool = False
    direction: int = 1
    signature: int = 0


class OracleIpTable:
    """Direct-mapped IP table with the paper's hysteresis duel."""

    def __init__(self, entries: int = 64, tag_bits: int = 9) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.index_bits = entries.bit_length() - 1
        self.slots: list[_IpState | None] = [None] * entries

    def access(self, ip: int) -> _IpState | None:
        """Hysteresis lookup: owner hit, challenger clears, or takeover."""
        index = ip % self.entries
        tag = (ip >> self.index_bits) & ((1 << self.tag_bits) - 1)
        slot = self.slots[index]
        if slot is not None and slot.tag == tag:
            slot.valid = True
            return slot
        if slot is not None and slot.valid:
            slot.valid = False  # incumbent survives the first challenge
            return None
        fresh = _IpState(tag=tag)
        self.slots[index] = fresh
        return fresh


class OracleCsClassifier:
    """Constant-stride training: 2-bit confidence duel on the stride."""

    @staticmethod
    def observe_stride(state: _IpState, vaddr: int) -> int:
        """Page-offset stride of this access vs the entry's previous one."""
        offset = (vaddr >> LINE_SHIFT) % LINES_PER_PAGE
        vpage2 = (vaddr >> 12) % 4
        stride = offset - state.last_offset
        if vpage2 != state.last_vpage2:
            page_step = (vpage2 - state.last_vpage2) % 4
            if page_step == 1:
                stride += LINES_PER_PAGE
            elif page_step == 3:
                stride -= LINES_PER_PAGE
            else:
                stride = 0  # non-adjacent page jump: meaningless
        return saturate_stride(stride)

    @staticmethod
    def train(state: _IpState, stride: int) -> None:
        if stride == state.stride:
            state.confidence = min(3, state.confidence + 1)
        else:
            state.confidence = max(0, state.confidence - 1)
            if state.confidence == 0:
                state.stride = stride

    @staticmethod
    def eligible(state: _IpState) -> bool:
        return state.confidence >= 2 and state.stride != 0

    @staticmethod
    def deltas(state: _IpState, degree: int) -> list[int]:
        return [state.stride * k for k in range(1, degree + 1)]


class OracleCplxClassifier:
    """Signature-indexed complex-stride table (CSPT)."""

    def __init__(self, entries: int = 128) -> None:
        self.entries = entries
        self.strides = [0] * entries
        self.confidence = [0] * entries

    @staticmethod
    def next_signature(signature: int, stride: int) -> int:
        return ((signature << 1) ^ (stride & SIG_MASK)) & SIG_MASK

    def train(self, signature: int, stride: int) -> None:
        stride = saturate_stride(stride)
        index = signature % self.entries
        if self.strides[index] == stride and stride != 0:
            self.confidence[index] = min(3, self.confidence[index] + 1)
        else:
            self.confidence[index] = max(0, self.confidence[index] - 1)
            if self.confidence[index] == 0:
                self.strides[index] = stride

    def deltas(self, signature: int, degree: int) -> list[int]:
        """Roll the signature forward while predictions stay confident."""
        out: list[int] = []
        total = 0
        for _ in range(degree):
            index = signature % self.entries
            stride = self.strides[index]
            if self.confidence[index] < 1 or stride == 0:
                break
            total += stride
            out.append(total)
            signature = self.next_signature(signature, stride)
        return out


@dataclass
class _RegionState:
    """Per-2KB-region stream state (the paper's 53-bit RST entry)."""

    touched: set[int] = field(default_factory=set)
    last_offset: int = 0
    counter: int = 32  # 6-bit direction counter, midpoint start
    trained: bool = False
    tentative: bool = False
    direction: int = 1


class OracleGsClassifier:
    """Region stream table: density training + tentative promotion."""

    TRAIN_THRESHOLD = 24  # 75% of a region's 32 lines

    def __init__(self, entries: int = 8) -> None:
        self.entries = entries
        self.regions: dict[int, _RegionState] = {}  # insertion = LRU order

    def observe(self, region: int, offset: int,
                previous_region: int | None) -> _RegionState:
        state = self.regions.pop(region, None)
        if state is None:
            tentative = False
            if previous_region is not None and previous_region != region:
                prev = self.regions.get(previous_region)
                tentative = prev is not None and prev.trained
            state = _RegionState(tentative=tentative, last_offset=offset)
            while len(self.regions) >= self.entries:
                del self.regions[next(iter(self.regions))]
        self.regions[region] = state  # (re)insert at MRU position

        if offset not in state.touched:
            state.touched.add(offset)
            if len(state.touched) >= self.TRAIN_THRESHOLD:
                state.trained = True
        step = offset - state.last_offset
        if step > 0:
            state.counter = min(63, state.counter + 1)
        elif step < 0:
            state.counter = max(0, state.counter - 1)
        state.direction = 1 if state.counter >= 32 else -1
        state.last_offset = offset
        return state


class OracleThrottle:
    """Per-class epoch accuracy throttle (256 fills per epoch)."""

    def __init__(self, default_degree: int) -> None:
        self.default_degree = default_degree
        self.degree = default_degree
        self.fills = 0
        self.hits = 0
        self.accuracy = 1.0  # optimistic until the first epoch closes

    def on_fill(self) -> None:
        self.fills += 1
        if self.fills >= EPOCH_FILLS:
            self.accuracy = self.hits / self.fills
            if self.accuracy > HIGH_WATERMARK:
                self.degree = min(self.default_degree, self.degree + 1)
            elif self.accuracy < LOW_WATERMARK:
                self.degree = max(1, self.degree - 1)
            self.fills = 0
            self.hits = 0

    def on_hit(self) -> None:
        self.hits += 1


class OracleIpcpL1:
    """The bouquet walk, assembled from the naive mechanism models.

    :meth:`step` consumes one demand access and returns the
    :class:`OracleDecision` the paper's rules produce — train every
    classifier, then walk GS > CS > CPLX > NL issuing for the first
    class the IP belongs to (continuing past low-accuracy classes),
    page-bounded and RR-filtered, each request carrying its metadata.
    """

    def __init__(
        self,
        cs_degree: int = 3,
        cplx_degree: int = 3,
        gs_degree: int = 6,
        nl_mpki_threshold: float = 50.0,
        ip_table_entries: int = 64,
        cspt_entries: int = 128,
        rst_entries: int = 8,
        rr_entries: int = 32,
        throttling: bool = True,
    ) -> None:
        self.nl_mpki_threshold = nl_mpki_threshold
        self.throttling = throttling
        self.ip_table = OracleIpTable(entries=ip_table_entries)
        self.cs = OracleCsClassifier()
        self.cplx = OracleCplxClassifier(entries=cspt_entries)
        self.gs = OracleGsClassifier(entries=rst_entries)
        self.rr = OracleRrFilter(entries=rr_entries)
        self.throttles = {
            CLASS_CS: OracleThrottle(cs_degree),
            CLASS_CPLX: OracleThrottle(cplx_degree),
            CLASS_GS: OracleThrottle(gs_degree),
            CLASS_NL: OracleThrottle(1),
        }

    # ---------------------------------------------------------------- #
    # Feedback (mirrors the cache's fill/hit callbacks)
    # ---------------------------------------------------------------- #

    def on_prefetch_fill(self, pf_class: int) -> None:
        throttle = self.throttles.get(pf_class)
        if throttle is not None:
            throttle.on_fill()

    def on_prefetch_hit(self, pf_class: int) -> None:
        throttle = self.throttles.get(pf_class)
        if throttle is not None:
            throttle.on_hit()

    # ---------------------------------------------------------------- #
    # One demand access
    # ---------------------------------------------------------------- #

    def step(self, ip: int, vaddr: int, mpki: float = 0.0) -> OracleDecision:
        line = vaddr >> LINE_SHIFT
        self.rr.remember(line)

        state = self.ip_table.access(ip)

        # GS trains on every access, tracked IP or not.
        previous_region = None
        if state is not None and state.last_line:
            previous_region = state.last_line // LINES_PER_REGION
        region_state = self.gs.observe(
            line // LINES_PER_REGION, line % LINES_PER_REGION, previous_region
        )

        # CS + CPLX train only once the IP has a previous access.
        stride = 0
        if state is not None and state.last_line:
            stride = self.cs.observe_stride(state, vaddr)
            if stride != 0:
                self.cs.train(state, stride)
                self.cplx.train(state.signature, stride)
                state.signature = self.cplx.next_signature(
                    state.signature, stride
                )

        if state is not None:
            if region_state.trained or region_state.tentative:
                state.stream_valid = True
                state.direction = region_state.direction
            else:
                state.stream_valid = False
            state.last_vpage2 = (vaddr >> 12) % 4
            state.last_offset = (vaddr >> LINE_SHIFT) % LINES_PER_PAGE
            state.last_line = line

        return OracleDecision(tuple(self._walk(state, line, mpki)))

    def _walk(self, state: _IpState | None, line: int, mpki: float
              ) -> list[tuple[int, int, int, int]]:
        if state is None:
            return []  # the IP lost the hysteresis duel: issue nothing
        requests: list[tuple[int, int, int, int]] = []
        for pf_class in PRIORITY:
            throttle = self.throttles[pf_class]
            degree = throttle.degree if self.throttling else throttle.default_degree
            if pf_class == CLASS_GS:
                if not state.stream_valid:
                    continue
                deltas = [state.direction * k for k in range(1, degree + 1)]
                meta_stride = state.direction
            elif pf_class == CLASS_CS:
                if not self.cs.eligible(state):
                    continue
                deltas = self.cs.deltas(state, degree)
                meta_stride = state.stride
            elif pf_class == CLASS_CPLX:
                deltas = self.cplx.deltas(state.signature, degree)
                meta_stride = 0
                if not deltas:
                    continue  # CSPT not confident: fall through to NL
            else:  # NL
                if mpki >= self.nl_mpki_threshold:
                    continue
                deltas, meta_stride = [1], 0
            requests.extend(self._emit(pf_class, line, deltas, meta_stride))
            if self.throttling and throttle.accuracy < LOW_WATERMARK:
                continue  # low accuracy: let lower classes explore too
            break
        return requests

    def _emit(self, pf_class: int, line: int, deltas: list[int],
              meta_stride: int) -> list[tuple[int, int, int, int]]:
        page = line // LINES_PER_PAGE
        meta_class = META_OF_CLASS[pf_class]
        # Strides ride to the L2 only while the class runs above the
        # high accuracy watermark.
        if self.throttles[pf_class].accuracy < HIGH_WATERMARK:
            meta_stride = 0
        meta_stride = saturate_stride(meta_stride)
        out = []
        for delta in deltas:
            target = line + delta
            if target < 0 or target // LINES_PER_PAGE != page:
                continue  # spatial contract: never cross the 4 KB page
            if self.rr.should_drop(target):
                continue
            out.append((target, pf_class, meta_class, meta_stride))
        return out
