"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` speaks the :mod:`repro.service.server` protocol
with nothing but :mod:`http.client` — one connection per call, JSON in
and out — and **reconstructs the service error taxonomy** from error
responses: a 429 queue-full body becomes the same
:class:`~repro.errors.QueueFullError` (with its ``retry_after`` hint)
the in-process core would have raised, so callers and the CLI handle
local and remote rejection identically, including exit codes.

:meth:`ServiceClient.stream` reads the ``application/x-ndjson``
streaming endpoint incrementally, yielding each job's terminal
document the moment the server writes it.
"""

from __future__ import annotations

import http.client
import json
from urllib.parse import quote, urlencode

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServiceError,
)
from repro.runner.job import JobSpec
from repro.service.wire import spec_to_wire

_RETRYABLE = {
    QueueFullError.exit_code: QueueFullError,
    QuotaExceededError.exit_code: QuotaExceededError,
}


def _raise_for(status: int, payload: dict) -> None:
    """Rebuild the taxonomy error a non-2xx response describes."""
    message = payload.get("error", f"service returned HTTP {status}")
    exit_code = payload.get("exit_code")
    retry_after = payload.get("retry_after", 1.0)
    if exit_code in _RETRYABLE:
        raise _RETRYABLE[exit_code](message, retry_after=retry_after)
    if exit_code == ConfigurationError.exit_code:
        raise ConfigurationError(message)
    if status == 503 or exit_code == ServiceError.exit_code:
        error = ServiceError(message)
        error.retry_after = retry_after
        raise error
    raise ReproError(f"HTTP {status}: {message}")


class ServiceClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str, port: int, *, tenant: str = "default",
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {error}"
            ) from error
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as error:
            raise ServiceError(
                f"service sent invalid JSON for {method} {path}: {error}"
            ) from error
        if response.status != 200:
            _raise_for(response.status, document)
        return document

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec | dict) -> dict:
        """Submit a job; returns its poll document (``key`` included)."""
        wire = spec_to_wire(spec) if isinstance(spec, JobSpec) else spec
        return self._request("POST", "/jobs",
                             {"spec": wire, "tenant": self.tenant})

    def poll(self, key: str) -> dict:
        """The job's current poll document (404 raises ReproError)."""
        return self._request("GET", f"/jobs/{quote(key)}")

    def wait(self, key: str, timeout: float | None = None) -> dict:
        """Block server-side until the job is terminal (or timeout)."""
        path = f"/jobs/{quote(key)}/wait"
        if timeout is not None:
            path += "?" + urlencode({"timeout": timeout})
        return self._request("GET", path)

    def cancel(self, key: str) -> dict:
        """Detach this tenant's attachment from a queued job."""
        return self._request("POST", f"/jobs/{quote(key)}/cancel",
                             {"tenant": self.tenant})

    def metrics(self) -> dict:
        """The service metrics snapshot."""
        return self._request("GET", "/metrics")

    def healthz(self) -> dict:
        """Liveness document (``{"ok": true, "draining": ...}``)."""
        return self._request("GET", "/healthz")

    def drain(self) -> dict:
        """Ask the service to drain (blocks until workers exited)."""
        return self._request("POST", "/drain")

    def stream(self, keys: list[str], timeout: float | None = None):
        """Yield terminal documents for ``keys`` in completion order.

        Documents arrive as the server settles each job (JSONL over a
        held-open response); an unknown key yields a ``state:
        "unknown"`` document immediately.
        """
        if not keys:
            return
        query = {"keys": ",".join(keys)}
        if timeout is not None:
            query["timeout"] = timeout
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/stream?" + urlencode(query))
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                document = json.loads(raw.decode("utf-8")) if raw else {}
                _raise_for(response.status, document)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"stream from {self.host}:{self.port} broke: {error}"
            ) from error
        finally:
            connection.close()
