"""Asyncio HTTP front end for :class:`~repro.service.core.JobService`.

A deliberately small HTTP/1.1 server built on :mod:`asyncio` streams —
no framework, no new dependencies — exposing the service as JSON over
a handful of routes:

========================  ====================================================
``POST /jobs``            submit ``{"spec": <wire spec>, "tenant": ...}``
                          (or a bare wire spec); 200 poll document,
                          400 malformed spec, 429 + ``Retry-After`` on
                          queue-full/quota, 503 + ``Retry-After`` while
                          draining
``GET /jobs/<key>``       poll document, 404 unknown key
``GET /jobs/<key>/wait``  block until terminal (``?timeout=seconds``
                          returns the current state on expiry)
``POST /jobs/<key>/cancel``  detach one attachment (body may carry
                          ``{"tenant": ...}``)
``GET /stream?keys=a,b``  ``application/x-ndjson`` stream: one JSON line
                          per key, written **as each job settles**, in
                          completion order
``GET /metrics``          the service metrics snapshot
``POST /drain``           drain the service (blocks until workers exit)
``GET /healthz``          liveness + draining flag
========================  ====================================================

Every response closes the connection (``Connection: close``), which
keeps the protocol trivially correct; the stdlib client opens one
connection per call.  Worker-thread completions are bridged into the
event loop with ``loop.call_soon_threadsafe`` via the core's
``add_done_callback`` — the loop never blocks on a simulation, and
blocking core calls (submit, drain, metrics) run on the default
executor.

:class:`ServiceServer` owns the listening socket and the graceful
shutdown path: SIGTERM/SIGINT (when installable, i.e. in a main
thread) or a ``drain_after`` deadline trigger a drain — intake starts
returning 503, running jobs finish, the journal is flushed — before
the socket closes.  Queued-but-unstarted jobs stay checkpointed in the
journal for the next start.
"""

from __future__ import annotations

import asyncio
import json
import signal
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServiceError,
)
from repro.service.core import JobService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_HEAD = 64 * 1024
_MAX_BODY = 64 * 1024 * 1024


class _HttpError(Exception):
    """Internal: carries a ready-to-send error response."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None,
                 exit_code: int | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.exit_code = exit_code


def _error_for(error: ReproError) -> _HttpError:
    """Map the service error taxonomy onto HTTP statuses."""
    retry_after = getattr(error, "retry_after", None)
    if isinstance(error, (QueueFullError, QuotaExceededError)):
        return _HttpError(429, str(error), retry_after=retry_after,
                          exit_code=error.exit_code)
    if isinstance(error, ConfigurationError):
        return _HttpError(400, str(error), exit_code=error.exit_code)
    if isinstance(error, ServiceError):
        return _HttpError(503, str(error),
                          retry_after=retry_after or 1.0,
                          exit_code=error.exit_code)
    return _HttpError(500, str(error), exit_code=error.exit_code)


class ServiceServer:
    """One listening socket in front of one :class:`JobService`."""

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ServiceServer":
        """Bind and start serving; resolves ``self.port`` when 0."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_HEAD)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_stop(self) -> None:
        """Ask the serve loop to drain and exit (thread-safe)."""
        if self._loop is None or self._stop is None:
            return
        self._loop.call_soon_threadsafe(self._stop.set)

    async def serve_until_stopped(self,
                                  drain_after: float | None = None) -> None:
        """Serve until SIGTERM/SIGINT, :meth:`request_stop` or deadline.

        On the way out the service is drained **before** the socket
        closes, so late pollers still get answers while workers finish;
        then the socket closes and the journal is released.
        """
        assert self._server is not None and self._stop is not None
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop.set)
                installed.append(signum)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signals
        timer = (loop.call_later(drain_after, self._stop.set)
                 if drain_after is not None else None)
        try:
            await self._stop.wait()
            await loop.run_in_executor(None, self.service.drain)
        finally:
            if timer is not None:
                timer.cancel()
            for signum in installed:
                loop.remove_signal_handler(signum)
            self._server.close()
            await self._server.wait_closed()
            await loop.run_in_executor(None, self.service.stop)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _HttpError as error:
                await self._send_error(writer, error)
                return
            try:
                await self._route(writer, method, path, query, body)
            except _HttpError as error:
                await self._send_error(writer, error)
            except ReproError as error:
                await self._send_error(writer, _error_for(error))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(400, "request head too large") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > _MAX_BODY:
            raise _HttpError(400, f"unacceptable Content-Length {length}")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method.upper(), split.path, parse_qs(split.query), body

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ConfigurationError(
                f"malformed job spec: request body is not JSON: {error}"
            ) from error
        if not isinstance(data, dict):
            raise ConfigurationError(
                "malformed job spec: request body must be a JSON object")
        return data

    async def _route(self, writer, method: str, path: str,
                     query: dict, body: bytes) -> None:
        loop = asyncio.get_running_loop()
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {
                "ok": True, "draining": self.service.draining})
            return
        if path == "/metrics" and method == "GET":
            snapshot = await loop.run_in_executor(
                None, self.service.metrics_snapshot)
            await self._send_json(writer, 200, snapshot)
            return
        if path == "/drain" and method == "POST":
            await loop.run_in_executor(None, self.service.drain)
            await self._send_json(writer, 200, {"drained": True})
            return
        if path == "/jobs" and method == "POST":
            data = self._json_body(body)
            spec = data.get("spec", data)
            tenant = data.get("tenant", "default")
            if not isinstance(tenant, str) or not tenant:
                raise ConfigurationError(
                    "malformed job spec: tenant must be a non-empty string")
            info = await loop.run_in_executor(
                None, self.service.submit, spec, tenant)
            await self._send_json(writer, 200, info)
            return
        if path == "/stream" and method == "GET":
            await self._stream(writer, query)
            return
        if path.startswith("/jobs/"):
            await self._job_route(writer, method, path, query, body)
            return
        raise _HttpError(404, f"no such route: {method} {path}")

    async def _job_route(self, writer, method: str, path: str,
                         query: dict, body: bytes) -> None:
        loop = asyncio.get_running_loop()
        parts = path.split("/")  # ["", "jobs", key] or ["", "jobs", key, verb]
        key = parts[2] if len(parts) > 2 else ""
        verb = parts[3] if len(parts) > 3 else None
        if verb is None and method == "GET":
            info = await loop.run_in_executor(None, self.service.poll, key)
            if info is None:
                raise _HttpError(404, f"unknown job key {key!r}")
            await self._send_json(writer, 200, info)
            return
        if verb == "wait" and method == "GET":
            timeout = self._float_param(query, "timeout")
            info = await self._wait_terminal(key, timeout)
            if info is None:
                raise _HttpError(404, f"unknown job key {key!r}")
            await self._send_json(writer, 200, info)
            return
        if verb == "cancel" and method == "POST":
            data = self._json_body(body)
            tenant = data.get("tenant", "default")
            info = await loop.run_in_executor(
                None, self.service.cancel, key, tenant)
            if info is None:
                raise _HttpError(404, f"unknown job key {key!r}")
            await self._send_json(writer, 200, info)
            return
        raise _HttpError(404, f"no such route: {method} {path}")

    @staticmethod
    def _float_param(query: dict, name: str) -> float | None:
        values = query.get(name)
        if not values:
            return None
        try:
            return float(values[0])
        except ValueError:
            raise _HttpError(
                400, f"query parameter {name!r} must be a number") from None

    async def _wait_terminal(self, key: str,
                             timeout: float | None) -> dict | None:
        """Await the job's terminal document via the callback bridge."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def settle(info: dict) -> None:
            loop.call_soon_threadsafe(self._resolve, future, info)

        known = await loop.run_in_executor(
            None, self.service.add_done_callback, key, settle)
        if not known:
            return None
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # Not terminal yet: report the current state instead.
            return await loop.run_in_executor(None, self.service.poll, key)

    @staticmethod
    def _resolve(future: asyncio.Future, info: dict) -> None:
        if not future.done():
            future.set_result(info)

    async def _stream(self, writer, query: dict) -> None:
        keys: list[str] = []
        for chunk in query.get("keys", []):
            keys.extend(k for k in chunk.split(",") if k)
        if not keys:
            raise _HttpError(400, "stream requires ?keys=<key>[,<key>...]")
        timeout = self._float_param(query, "timeout")
        loop = asyncio.get_running_loop()
        settled: asyncio.Queue = asyncio.Queue()

        def bridge(info: dict) -> None:
            loop.call_soon_threadsafe(settled.put_nowait, info)

        expected = 0
        for key in dict.fromkeys(keys):  # dedupe, keep order
            known = await loop.run_in_executor(
                None, self.service.add_done_callback, key, bridge)
            if known:
                expected += 1
            else:
                settled.put_nowait({"key": key, "state": "unknown",
                                    "result": None, "error": None})
                expected += 1
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        for _ in range(expected):
            if timeout is not None:
                try:
                    info = await asyncio.wait_for(settled.get(), timeout)
                except asyncio.TimeoutError:
                    break
            else:
                info = await settled.get()
            line = json.dumps(info, sort_keys=True) + "\n"
            writer.write(line.encode("utf-8"))
            await writer.drain()
            if info.get("state") != "unknown":
                self.service.note_streamed()

    # ------------------------------------------------------------------
    # response helpers
    # ------------------------------------------------------------------

    async def _send_json(self, writer, status: int, payload: dict,
                         retry_after: float | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after:g}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _send_error(self, writer, error: _HttpError) -> None:
        payload = {"error": str(error)}
        if error.exit_code is not None:
            payload["exit_code"] = error.exit_code
        if error.retry_after is not None:
            payload["retry_after"] = error.retry_after
        await self._send_json(writer, error.status, payload,
                              retry_after=error.retry_after)


def serve(service: JobService, host: str = "127.0.0.1", port: int = 0,
          *, drain_after: float | None = None, on_ready=None) -> None:
    """Run a service behind an HTTP front end until drained.

    Blocking entry point used by ``repro serve``: starts the workers,
    binds the socket, calls ``on_ready(server)`` (the CLI prints the
    bound address from it), then serves until a SIGTERM/SIGINT or the
    ``drain_after`` deadline triggers the graceful drain.
    """

    async def _main() -> None:
        server = await ServiceServer(service, host, port).start()
        service.start()
        if on_ready is not None:
            on_ready(server)
        await server.serve_until_stopped(drain_after=drain_after)

    asyncio.run(_main())
