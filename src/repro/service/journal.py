"""Append-only lifecycle journal: the service's drain/resume substrate.

Where the runner's :class:`~repro.resilience.CheckpointJournal` records
only *resolutions*, a long-running service must also remember what it
**accepted**: a SIGTERM drain checkpoints every in-flight job by
construction because the job was journaled at submission, before any
worker touched it.  One JSON line per lifecycle event::

    {"status": "submitted", "key": ..., "tenant": ..., "spec": {...}}
    {"status": "attached",  "key": ..., "tenant": ...}
    {"status": "done",      "key": ...}
    {"status": "failed",    "key": ..., "error": ...}
    {"status": "cancelled", "key": ...}

``submitted`` carries the full wire spec, so a restarted service can
re-enqueue pending work with zero client involvement; ``attached``
records single-flight dedup attachments so resumed quota accounting
stays faithful.  Lines are flushed as written (crash-consistent) and a
torn trailing line from a killed writer is skipped on load, exactly
like the checkpoint journal.  A key may cycle: a terminal line followed
by a fresh ``submitted`` line re-opens it (failed-job resubmission).
"""

from __future__ import annotations

import json
import os

from repro.errors import CheckpointError

SUBMITTED = "submitted"
ATTACHED = "attached"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, CANCELLED)


class ServiceJournal:
    """Append-only JSONL record of every job lifecycle transition."""

    def __init__(self, path: str) -> None:
        self.path = path
        # key -> {"spec": wire, "tenants": [..], "terminal": status|None}
        self.entries: dict[str, dict] = {}
        directory = os.path.dirname(path)
        if directory:
            try:
                os.makedirs(directory, exist_ok=True)
            except (FileExistsError, NotADirectoryError) as error:
                raise CheckpointError(
                    f"journal directory {directory!r} is not writable"
                ) from error
        if os.path.exists(path):
            self._load()
        try:
            self._fh = open(path, "a", encoding="utf-8")
        except OSError as error:
            raise CheckpointError(
                f"cannot open service journal {path!r}: {error}"
            ) from error

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as error:
            raise CheckpointError(
                f"cannot read service journal {self.path!r}: {error}"
            ) from error
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                status = event["status"]
                key = event["key"]
            except (ValueError, TypeError, KeyError):
                # Torn trailing line from a killed writer: everything
                # before it is still a valid checkpoint.
                continue
            self._apply(status, key, event)

    def _apply(self, status: str, key: str, event: dict) -> None:
        if status == SUBMITTED:
            entry = self.entries.get(key)
            if entry is None or entry["terminal"] is not None:
                entry = {"spec": None, "tenants": [], "terminal": None}
                self.entries[key] = entry
            entry["spec"] = event.get("spec", entry["spec"])
            entry["tenants"].append(event.get("tenant", "default"))
        elif status == ATTACHED:
            entry = self.entries.get(key)
            if entry is not None and entry["terminal"] is None:
                entry["tenants"].append(event.get("tenant", "default"))
        elif status in _TERMINAL:
            entry = self.entries.get(key)
            if entry is not None:
                entry["terminal"] = status

    def _write(self, event: dict) -> None:
        self._apply(event["status"], event["key"], event)
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def record_submitted(self, key: str, spec_wire: dict,
                         tenant: str) -> None:
        """A new job was accepted (spec checkpointed for resume)."""
        self._write({"status": SUBMITTED, "key": key, "tenant": tenant,
                     "spec": spec_wire})

    def record_attached(self, key: str, tenant: str) -> None:
        """A duplicate submission attached to an in-flight job."""
        self._write({"status": ATTACHED, "key": key, "tenant": tenant})

    def record_done(self, key: str) -> None:
        """The job resolved; its payload is in the result cache."""
        self._write({"status": DONE, "key": key})

    def record_failed(self, key: str, error: str) -> None:
        """The job terminally failed."""
        self._write({"status": FAILED, "key": key, "error": error})

    def record_cancelled(self, key: str) -> None:
        """Every attachment of a queued job was cancelled."""
        self._write({"status": CANCELLED, "key": key})

    def pending(self) -> list[tuple[str, dict, list[str]]]:
        """``(key, spec_wire, tenants)`` for every non-terminal job.

        Journal insertion order, so a resumed service re-enqueues in
        the order clients originally submitted.
        """
        return [
            (key, entry["spec"], list(entry["tenants"]))
            for key, entry in self.entries.items()
            if entry["terminal"] is None and entry["spec"] is not None
        ]

    @property
    def done_keys(self) -> set[str]:
        """Keys whose jobs completed (payload expected in the cache)."""
        return {key for key, entry in self.entries.items()
                if entry["terminal"] == DONE}

    def flush(self) -> None:
        """Flush and fsync buffered lines to disk."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and close the journal file."""
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "ServiceJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
