"""Sharded bounded job queue and per-tenant quota accounting.

Both structures are deliberately lock-free: the service core serializes
every mutation under its own condition-variable lock, so these stay
simple, deterministic containers.

:class:`ShardedJobQueue` spreads job keys across ``shards`` FIFO deques
by key hash (job keys are already uniform blake2b hex, so the low bits
shard evenly) and enforces one **global** bound across shards — the
backpressure contract is "at most N jobs queued in this service", not
per-shard.  :meth:`push` raises :class:`~repro.errors.QueueFullError`
with a ``retry_after`` hint when full; :meth:`pop` round-robins across
non-empty shards so one hot shard cannot starve the rest.

:class:`QuotaLedger` counts in-flight (queued + running) job
attachments per tenant and rejects a submission that would exceed the
limit with :class:`~repro.errors.QuotaExceededError` — also retryable,
once the tenant's jobs resolve.
"""

from __future__ import annotations

from repro.errors import QueueFullError, QuotaExceededError, ReproError


class ShardedJobQueue:
    """Bounded multi-shard FIFO of job keys (not thread-safe by itself)."""

    def __init__(self, bound: int = 64, shards: int = 4,
                 retry_after: float = 1.0) -> None:
        if bound < 1:
            raise ReproError(f"queue bound must be >= 1, got {bound}")
        if shards < 1:
            raise ReproError(f"queue shards must be >= 1, got {shards}")
        self.bound = bound
        self.shards = shards
        self.retry_after = retry_after
        self._shards: list[list[str]] = [[] for _ in range(shards)]
        self._members: set[str] = set()
        self._next = 0  # round-robin pop cursor

    def _shard_of(self, key: str) -> int:
        # Stable across processes (built-in str hash is salted): job
        # keys are blake2b hex, so their leading bits shard uniformly.
        try:
            return int(key[:8], 16) % self.shards
        except ValueError:
            import hashlib

            digest = hashlib.blake2b(key.encode(), digest_size=4).digest()
            return int.from_bytes(digest, "big") % self.shards

    def push(self, key: str, force: bool = False) -> None:
        """Enqueue a key; raises :class:`QueueFullError` at the bound.

        ``force`` bypasses the bound — used only when re-enqueueing
        journaled jobs on resume, which must never be dropped because
        the configured bound shrank between runs.
        """
        if not force and len(self._members) >= self.bound:
            raise QueueFullError(
                f"job queue full ({self.bound} queued); retry after "
                f"{self.retry_after:g}s",
                retry_after=self.retry_after,
            )
        if key in self._members:
            return
        self._shards[self._shard_of(key)].append(key)
        self._members.add(key)

    def pop(self) -> str | None:
        """Dequeue the next key round-robin across non-empty shards."""
        for offset in range(self.shards):
            index = (self._next + offset) % self.shards
            if self._shards[index]:
                self._next = (index + 1) % self.shards
                key = self._shards[index].pop(0)
                self._members.discard(key)
                return key
        return None

    def remove(self, key: str) -> bool:
        """Drop a queued key (cancellation); True if it was queued."""
        if key not in self._members:
            return False
        self._shards[self._shard_of(key)].remove(key)
        self._members.discard(key)
        return True

    def __contains__(self, key: str) -> bool:
        return key in self._members

    def __len__(self) -> int:
        return len(self._members)


class QuotaLedger:
    """Per-tenant in-flight job accounting (not thread-safe by itself)."""

    def __init__(self, limit: int | None = None,
                 retry_after: float = 1.0) -> None:
        if limit is not None and limit < 1:
            raise ReproError(f"quota limit must be >= 1, got {limit}")
        self.limit = limit
        self.retry_after = retry_after
        self._inflight: dict[str, int] = {}

    def charge(self, tenant: str, force: bool = False) -> None:
        """Account one in-flight attachment; raises at the limit.

        ``force`` bypasses the limit for journal-resumed attachments —
        already-accepted work is never rejected retroactively.
        """
        count = self._inflight.get(tenant, 0)
        if not force and self.limit is not None and count >= self.limit:
            raise QuotaExceededError(
                f"tenant {tenant!r} has {count} in-flight jobs "
                f"(quota {self.limit}); retry after {self.retry_after:g}s",
                retry_after=self.retry_after,
            )
        self._inflight[tenant] = count + 1

    def release(self, tenant: str, count: int = 1) -> None:
        """Release ``count`` attachments for a tenant."""
        remaining = self._inflight.get(tenant, 0) - count
        if remaining > 0:
            self._inflight[tenant] = remaining
        else:
            self._inflight.pop(tenant, None)

    def inflight(self, tenant: str) -> int:
        """Current in-flight attachment count for a tenant."""
        return self._inflight.get(tenant, 0)

    def snapshot(self) -> dict:
        """``{"limit": ..., "tenants": {...}}`` for the metrics endpoint."""
        return {"limit": self.limit, "tenants": dict(self._inflight)}
