"""JSON wire forms of job specs and results for the service API.

A client submits a :class:`~repro.runner.job.JobSpec` as plain JSON
(:func:`spec_to_wire` / :func:`spec_from_wire`); the server answers
with a compact result summary (:func:`result_to_wire`) rather than the
full pickled payload.  Two properties matter:

* **content addressing survives the wire** — :func:`spec_from_wire`
  rebuilds the spec through the same constructors the local runner
  uses (:func:`~repro.runner.job.levels_job` and friends), recomputing
  the trace signature from the transmitted records, so a job submitted
  over HTTP lands on exactly the cache key a local run of the same
  cell would use (read-through cache + single-flight dedup for free);
* **bit-identity is checkable end to end** — every result summary
  carries ``digest``, a blake2b hash of the canonical pickle of the
  payload, which is the same representation the chaos proof compares.
  Two runs produced identical results iff their digests match, so a
  client can verify a chaos-interrupted service recovered perfectly
  without shipping the payload back.

Malformed wire input raises :class:`~repro.errors.ConfigurationError`
(CLI exit code 3), never a traceback.
"""

from __future__ import annotations

import hashlib
import pickle

from repro.config_io import system_from_dict, system_to_dict
from repro.errors import ConfigurationError
from repro.runner.job import (
    JobSpec,
    KIND_ALONE_IPC,
    KIND_LEVELS,
    KIND_MIX,
    KIND_TRACE,
    alone_ipc_job,
    levels_job,
    mix_job,
    trace_job,
)
from repro.sim.trace import Trace

WIRE_KINDS = (KIND_LEVELS, KIND_TRACE, KIND_MIX, KIND_ALONE_IPC)

_DIGEST_SIZE = 16


def spec_to_wire(spec: JobSpec) -> dict:
    """Serialize a :class:`JobSpec` into a plain-JSON dict."""
    if spec.kind == KIND_MIX:
        records = [[list(record) for record in core] for core in spec.records]
    else:
        records = [list(record) for record in spec.records]
    return {
        "kind": spec.kind,
        "trace_name": spec.trace_name,
        "config_name": spec.config_name,
        "records": records,
        "params": (system_to_dict(spec.params)
                   if spec.params is not None else None),
        "warmup": spec.warmup,
        "max_instructions": spec.max_instructions,
        "roi": spec.roi,
        "seed": spec.seed,
        "engine": spec.engine,
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"malformed job spec: {message}")


def _as_records(raw: object, where: str) -> list[tuple[int, int, int, int]]:
    _require(isinstance(raw, list) and raw, f"{where} must be a non-empty "
             "list of [kind, ip, addr, dep] records")
    records = []
    for index, item in enumerate(raw):
        _require(isinstance(item, (list, tuple)) and len(item) == 4,
                 f"{where}[{index}] is not a 4-element record")
        _require(all(isinstance(field, int) and not isinstance(field, bool)
                     for field in item),
                 f"{where}[{index}] has non-integer fields")
        records.append(tuple(item))
    return records


def _optional_int(data: dict, field: str) -> int | None:
    value = data.get(field)
    if value is None:
        return None
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{field} must be an integer or null")
    return value


def spec_from_wire(data: object) -> JobSpec:
    """Rebuild a validated :class:`JobSpec` from its wire dict.

    The trace signature is always recomputed from the transmitted
    records (a submitted signature is ignored), so the resulting cache
    key is trustworthy: a client cannot alias one job's records onto
    another job's cache slot.

    Instead of inline ``records``, non-mix jobs may carry a
    ``trace_ref``/``registry`` pair naming a trace in a checksummed
    :class:`~repro.ingest.registry.TraceRegistry` on the server's
    filesystem.  The referenced file is re-verified against its
    registered signature at spec-build time — a tampered trace raises
    :class:`~repro.errors.TraceChecksumError` (never swallowed into a
    generic bad-spec error) and therefore can neither run nor replay a
    clean trace's cached results.
    """
    _require(isinstance(data, dict), "expected a JSON object")
    kind = data.get("kind", KIND_LEVELS)
    _require(kind in WIRE_KINDS,
             f"unknown kind {kind!r}; expected one of {WIRE_KINDS}")
    trace_ref = data.get("trace_ref")
    registered_trace = None
    if trace_ref is not None:
        _require(isinstance(trace_ref, str) and trace_ref,
                 "trace_ref must be a non-empty string")
        _require(kind != KIND_MIX, "trace_ref is not supported for mix jobs")
        _require(data.get("records") is None,
                 "trace_ref and records are mutually exclusive")
        registry = data.get("registry")
        _require(isinstance(registry, str) and registry,
                 "trace_ref requires a registry path")
        from repro.ingest.registry import load_registered_trace

        # Outside the catch-all below: a checksum refusal must surface
        # as TraceChecksumError (exit code 16), not as a bad spec.
        registered_trace, _ = load_registered_trace(registry, trace_ref)
    trace_name = data.get("trace_name", trace_ref)
    _require(isinstance(trace_name, str) and trace_name,
             "trace_name must be a non-empty string")
    config_name = data.get("config_name", "none")
    _require(isinstance(config_name, str) and config_name,
             "config_name must be a non-empty string")
    params = data.get("params")
    if params is not None:
        _require(isinstance(params, dict), "params must be an object or null")
        params = system_from_dict(params)
    warmup = _optional_int(data, "warmup")
    max_instructions = _optional_int(data, "max_instructions")
    roi = _optional_int(data, "roi")
    seed = _optional_int(data, "seed")
    engine = data.get("engine", "scalar")
    _require(isinstance(engine, str), "engine must be a string")

    try:
        if kind == KIND_MIX:
            raw = data.get("records")
            names = trace_name.split("+")
            _require(isinstance(raw, list) and raw,
                     "records must be a non-empty list (one per core)")
            _require(len(names) == len(raw),
                     f"trace_name names {len(names)} cores but records "
                     f"holds {len(raw)}")
            traces = [
                Trace(_as_records(core, f"records[{index}]"), name=name)
                for index, (core, name) in enumerate(zip(raw, names))
            ]
            return mix_job(
                traces, config_name, params=params,
                warmup=warmup if warmup is not None else 5_000,
                roi=roi if roi is not None else 20_000,
                seed=seed if seed is not None else 1,
                engine=engine,
            )
        if registered_trace is not None:
            trace = registered_trace
        else:
            trace = Trace(_as_records(data.get("records"), "records"),
                          name=trace_name)
        if kind == KIND_ALONE_IPC:
            _require(params is not None, "alone-ipc jobs require params")
            _require(warmup is not None and roi is not None,
                     "alone-ipc jobs require warmup and roi")
            return alone_ipc_job(trace, params, warmup, roi,
                                 seed if seed is not None else 1)
        build = trace_job if kind == KIND_TRACE else levels_job
        return build(trace, config_name, params=params, warmup=warmup,
                     max_instructions=max_instructions, engine=engine)
    except ConfigurationError:
        raise
    except Exception as error:  # Trace/engine validation and friends
        raise ConfigurationError(
            f"malformed job spec: {type(error).__name__}: {error}"
        ) from error


def result_digest(payload: object) -> str:
    """Bit-identity digest of a result payload's canonical pickle."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.blake2b(body, digest_size=_DIGEST_SIZE).hexdigest()


def result_to_wire(payload: object) -> dict:
    """Compact JSON summary of a result payload.

    Always carries ``type`` and the bit-identity ``digest``; numeric
    headline metrics are added for the payload shapes the runner
    produces (``SimResult``/``TraceRunResult``/``MixResult``/alone-IPC
    floats) so a client can read IPC without fetching the pickle.
    """
    wire: dict = {
        "type": type(payload).__name__,
        "digest": result_digest(payload),
    }
    if isinstance(payload, (int, float)):
        wire["value"] = float(payload)
        return wire
    target = getattr(payload, "result", payload)  # TraceRunResult.result
    for field in ("instructions", "cycles", "dram_reads"):
        value = getattr(target, field, None)
        if isinstance(value, int):
            wire[field] = value
    for field in ("ipc", "weighted_speedup"):
        value = getattr(target, field, None)
        if isinstance(value, (int, float)):
            wire[field] = float(value)
    return wire
