"""Simulation-as-a-service: a long-running job server over the runner.

The package turns the batch :class:`~repro.runner.SimulationRunner`
into a service with the semantics a shared deployment needs —
content-addressed idempotent submission, single-flight dedup of
identical in-flight jobs, a read-through shared result cache, bounded
queues with retryable backpressure, per-tenant quotas, streaming
result delivery, SLO metrics, and graceful drain/resume through an
append-only journal.  See ``docs/service.md`` for the API contract.

Layering (each importable and testable on its own):

* :mod:`repro.service.wire` — JSON job specs and digest-bearing result
  summaries;
* :mod:`repro.service.queue` — sharded bounded queue + quota ledger;
* :mod:`repro.service.journal` — append-only lifecycle journal
  (drain/resume substrate);
* :mod:`repro.service.metrics` — counters and p50/p95 latency;
* :mod:`repro.service.core` — the thread-safe single-flight engine;
* :mod:`repro.service.server` — asyncio HTTP front end;
* :mod:`repro.service.client` — stdlib client that reconstructs the
  error taxonomy from wire errors.
"""

from repro.service.client import ServiceClient
from repro.service.core import (
    CANCELLED,
    DONE,
    FAILED,
    JobRecord,
    JobService,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)
from repro.service.journal import ServiceJournal
from repro.service.metrics import ServiceMetrics, nearest_rank
from repro.service.queue import QuotaLedger, ShardedJobQueue
from repro.service.server import ServiceServer, serve
from repro.service.wire import (
    result_digest,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobRecord",
    "JobService",
    "QUEUED",
    "QuotaLedger",
    "RUNNING",
    "ServiceClient",
    "ServiceJournal",
    "ServiceMetrics",
    "ServiceServer",
    "ShardedJobQueue",
    "TERMINAL_STATES",
    "nearest_rank",
    "result_digest",
    "result_to_wire",
    "serve",
    "spec_from_wire",
    "spec_to_wire",
]
