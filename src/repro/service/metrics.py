"""Service-level counters and latency quantiles (SLO metrics).

:class:`ServiceMetrics` is a plain counter bag mutated under the
service core's lock — it does no locking of its own.  The snapshot it
renders is the ``GET /metrics`` payload: job-lifecycle counters
(submitted / deduped / rejected / completed), cache effectiveness, and
p50/p95 job latency measured from submission to terminal state, which
is the number a latency SLO is written against.

Quantiles use the nearest-rank method over every recorded latency —
deterministic, dependency-free, and exact for the test-sized streams
the harness asserts on.
"""

from __future__ import annotations

import math


def nearest_rank(values: list[float], quantile: float) -> float:
    """Nearest-rank quantile of ``values`` (``quantile`` in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Mutable counter bag for one service instance."""

    COUNTERS = (
        "submitted",          # every submission received (incl. dedup/hits)
        "accepted",           # submissions that enqueued a new execution
        "deduped",            # submissions attached to an in-flight job
        "cache_hits",         # submissions answered by the result cache
        "cache_lookups",      # read-through probes at submit time
        "rejected_queue_full",
        "rejected_quota",
        "rejected_draining",
        "completed",
        "failed",
        "cancelled",
        "resumed",            # jobs re-enqueued from the journal on start
        "requeued_lost",      # journaled-done jobs re-run because their
                              # cached payload was gone (e.g. evicted as
                              # corrupt) when the service restarted
        "streamed",           # results delivered over streaming responses
    )

    def __init__(self) -> None:
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.latencies: list[float] = []

    def record_latency(self, seconds: float) -> None:
        """Record one job's submit-to-terminal latency."""
        self.latencies.append(seconds)

    def snapshot(self, *, queued: int, running: int,
                 runner_counters: dict | None = None,
                 extra: dict | None = None) -> dict:
        """Render the ``GET /metrics`` document."""
        hit_denominator = max(1, self.cache_lookups)
        document = {
            "jobs": {
                **{name: getattr(self, name) for name in self.COUNTERS},
                "queued": queued,
                "running": running,
            },
            "cache": {
                "lookups": self.cache_lookups,
                "hits": self.cache_hits,
                "hit_rate": self.cache_hits / hit_denominator,
            },
            "latency": {
                "count": len(self.latencies),
                "p50_s": nearest_rank(self.latencies, 0.50),
                "p95_s": nearest_rank(self.latencies, 0.95),
                "mean_s": (sum(self.latencies) / len(self.latencies)
                           if self.latencies else 0.0),
            },
        }
        if runner_counters is not None:
            document["runner"] = dict(runner_counters)
        if extra:
            document.update(extra)
        return document
