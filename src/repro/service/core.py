"""The thread-safe job engine behind the simulation service.

:class:`JobService` is the synchronous heart of ``repro serve``: the
HTTP layer (:mod:`repro.service.server`) is a thin asyncio shell around
it, and every semantic the service promises lives here, testable
without a socket:

* **content-addressed idempotency** — a job's identity is its
  :meth:`~repro.runner.job.JobSpec.cache_key`, so resubmitting the same
  cell is never new work;
* **single-flight dedup** — a submission whose key is already queued or
  running *attaches* to the in-flight job (one execution, N
  deliveries);
* **read-through result cache** — a submission whose key is already in
  the shared :class:`~repro.runner.cache.ResultCache` resolves
  immediately without touching the queue;
* **backpressure and quotas** — a bounded sharded queue rejects
  overload with a retryable :class:`~repro.errors.QueueFullError`, and
  a per-tenant ledger rejects quota busts with
  :class:`~repro.errors.QuotaExceededError`;
* **graceful drain** — :meth:`drain` stops intake, lets running jobs
  finish, and leaves queued jobs checkpointed in the
  :class:`~repro.service.journal.ServiceJournal`; a new service started
  on the same journal + cache re-enqueues them (zero lost jobs).

Execution reuses the fault-tolerant
:class:`~repro.runner.SimulationRunner` — one per worker thread, all
sharing one cache directory — so retries, timeouts and the failure
taxonomy behave exactly as they do for CLI sweeps, and the chaos
harness can interpose fault injection through the same pluggable
``execute`` hook.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ReproError, ServiceError
from repro.resilience.policy import RetryPolicy
from repro.runner.cache import ResultCache
from repro.runner.job import JobSpec
from repro.runner.pool import SimulationRunner
from repro.service.journal import ServiceJournal
from repro.service.metrics import ServiceMetrics
from repro.service.queue import QuotaLedger, ShardedJobQueue
from repro.service.wire import result_to_wire, spec_from_wire, spec_to_wire

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)

# Counters aggregated across the per-worker runners for /metrics.
_RUNNER_COUNTERS = (
    "simulations_run", "cache_hits", "retries", "timeouts",
    "transient_errors", "worker_crashes", "pool_respawns", "failures",
)


@dataclass
class JobRecord:
    """Mutable in-memory state of one job (guarded by the core lock)."""

    key: str
    spec: JobSpec
    state: str
    tenants: Counter = field(default_factory=Counter)
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    callbacks: list = field(default_factory=list)

    @property
    def attachments(self) -> int:
        """Live submissions attached to this job (>= 1 while in flight)."""
        return sum(self.tenants.values())


class JobService:
    """Thread-safe single-flight job engine (see module docstring).

    ``workers`` is the number of executor threads (0 = inline mode:
    nothing executes until :meth:`step` is called — property tests use
    this to control interleavings deterministically).  ``jobs``,
    ``retry`` and ``timeout`` configure each worker's underlying
    :class:`SimulationRunner`; ``execute`` swaps its execution function
    (chaos injection).  ``cache`` accepts a ready cache object (the
    chaos harness passes a corrupting proxy); otherwise ``cache_dir``
    names a shared on-disk cache.  ``journal`` is the service journal
    path; passing the journal of a drained service resumes its pending
    jobs.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_bound: int = 64,
        quota: int | None = None,
        shards: int = 4,
        cache_dir: str | None = None,
        cache=None,
        journal: str | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        jobs: int = 1,
        execute=None,
        retry_after: float = 0.25,
    ) -> None:
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.jobs = jobs
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.execute = execute
        self._cache_dir = cache_dir
        self.cache = cache if cache is not None else (
            ResultCache(cache_dir) if cache_dir else None)
        self._shared_cache = cache is not None
        self.metrics = ServiceMetrics()
        self._queue = ShardedJobQueue(queue_bound, shards,
                                      retry_after=retry_after)
        self._quota = QuotaLedger(quota, retry_after=retry_after)
        self._records: dict[str, JobRecord] = {}
        self._cond = threading.Condition()
        self._draining = False
        self._stopped = False
        self._threads: list[threading.Thread] = []
        self._runners: list[SimulationRunner] = []
        self._inline_runner: SimulationRunner | None = None
        self._journal = ServiceJournal(journal) if journal else None
        if self._journal is not None:
            self._resume_from_journal()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "JobService":
        """Spawn the worker threads (no-op in inline ``workers=0`` mode)."""
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def drain(self) -> None:
        """Stop intake, finish running jobs, checkpoint the rest.

        After this returns every worker has exited: jobs that were
        *running* have resolved (and are journaled ``done``/``failed``),
        jobs still *queued* remain ``submitted`` in the journal and are
        re-enqueued by the next service started on the same journal.
        Poll/metrics stay available; submissions are rejected with
        :class:`ServiceError` (HTTP 503).
        """
        with self._cond:
            if self._draining:
                return
            self._draining = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._journal is not None:
            self._journal.flush()

    def stop(self) -> None:
        """Drain (if not already) and release the journal."""
        self.drain()
        self._stopped = True
        if self._journal is not None:
            self._journal.close()

    @property
    def draining(self) -> bool:
        """Whether the service has stopped accepting submissions."""
        return self._draining

    # ------------------------------------------------------------------
    # client-facing operations (thread-safe)
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec | dict, tenant: str = "default") -> dict:
        """Submit one job; returns its poll document plus submit flags.

        Raises :class:`ServiceError` while draining,
        :class:`QueueFullError` at the queue bound and
        :class:`QuotaExceededError` over the tenant quota — all after
        the dedup/cache fast paths, which are never rejected (they cost
        no execution).
        """
        if isinstance(spec, dict):
            spec = spec_from_wire(spec)
        key = spec.cache_key()
        now = time.monotonic()
        with self._cond:
            self.metrics.submitted += 1
            record = self._records.get(key)
            if record is not None and record.state in (QUEUED, RUNNING):
                # Single-flight: attach to the in-flight execution.
                self._charge_quota(tenant)
                record.tenants[tenant] += 1
                self.metrics.deduped += 1
                if self._journal is not None:
                    self._journal.record_attached(key, tenant)
                return self._poll_info(record, deduped=True)
            if record is not None and record.state == DONE:
                # Answered from the completed record: counted as a
                # cache hit — it is one, just from the hot copy.
                self.metrics.cache_lookups += 1
                self.metrics.cache_hits += 1
                return self._poll_info(record, cached=True)
            if self.cache is not None:
                self.metrics.cache_lookups += 1
                hit, payload = self.cache.get(key)
                if hit:
                    self.metrics.cache_hits += 1
                    record = self._terminal_record(
                        key, spec, DONE, result=result_to_wire(payload),
                        submitted_at=now,
                    )
                    return self._poll_info(record, cached=True)
            if self._draining or self._stopped:
                self.metrics.rejected_draining += 1
                raise ServiceError(
                    "service is draining; not accepting new jobs")
            self._charge_quota(tenant)
            try:
                self._queue.push(key)
            except ReproError:
                self._quota.release(tenant)
                self.metrics.rejected_queue_full += 1
                raise
            record = JobRecord(key=key, spec=spec, state=QUEUED,
                               tenants=Counter({tenant: 1}),
                               submitted_at=now)
            self._records[key] = record
            self.metrics.accepted += 1
            if self._journal is not None:
                self._journal.record_submitted(key, spec_to_wire(spec),
                                               tenant)
            self._cond.notify()
            return self._poll_info(record)

    def _charge_quota(self, tenant: str) -> None:
        try:
            self._quota.charge(tenant)
        except ReproError:
            self.metrics.rejected_quota += 1
            raise

    def poll(self, key: str) -> dict | None:
        """The job's current poll document, or None for an unknown key."""
        with self._cond:
            record = self._records.get(key)
            return None if record is None else self._poll_info(record)

    def wait(self, key: str, timeout: float | None = None) -> dict | None:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while True:
                record = self._records.get(key)
                if record is None:
                    return None
                if record.state in TERMINAL_STATES:
                    return self._poll_info(record)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return self._poll_info(record)
                    self._cond.wait(min(0.1, remaining))
                else:
                    self._cond.wait(0.1)

    def cancel(self, key: str, tenant: str = "default") -> dict | None:
        """Detach one of the tenant's submissions from a queued job.

        The job is actually cancelled (removed from the queue) only
        when its last attachment detaches — other submitters keep their
        delivery.  Running and terminal jobs are not interrupted; the
        current document is returned unchanged.
        """
        with self._cond:
            record = self._records.get(key)
            if record is None:
                return None
            if record.state != QUEUED or record.tenants[tenant] < 1:
                return self._poll_info(record)
            record.tenants[tenant] -= 1
            self._quota.release(tenant)
            if record.attachments > 0:
                return self._poll_info(record)
            self._queue.remove(key)
            record.state = CANCELLED
            record.finished_at = time.monotonic()
            self.metrics.cancelled += 1
            if self._journal is not None:
                self._journal.record_cancelled(key)
            callbacks, info = self._take_callbacks(record)
            self._cond.notify_all()
        self._run_callbacks(callbacks, info)
        return info

    def add_done_callback(self, key: str, fn) -> bool:
        """Call ``fn(poll_document)`` when the job turns terminal.

        Returns False for an unknown key.  If the job is already
        terminal the callback fires immediately (from this thread);
        otherwise it fires from the worker thread that settles the job.
        The HTTP layer bridges these into asyncio futures.
        """
        with self._cond:
            record = self._records.get(key)
            if record is None:
                return False
            if record.state in TERMINAL_STATES:
                info = self._poll_info(record)
            else:
                record.callbacks.append(fn)
                return True
        fn(info)
        return True

    def note_streamed(self) -> None:
        """Count one result delivered over a streaming response."""
        with self._cond:
            self.metrics.streamed += 1

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics`` document."""
        with self._cond:
            running = sum(1 for record in self._records.values()
                          if record.state == RUNNING)
            runners = list(self._runners)
            if self._inline_runner is not None:
                runners.append(self._inline_runner)
            runner_counters = {
                name: sum(getattr(runner, name) for runner in runners)
                for name in _RUNNER_COUNTERS
            }
            # corrupt_evictions lives on the cache objects — the
            # service's own read-through copy plus each runner's —
            # which may or may not be the same instance; dedupe by
            # object so a shared cache is counted once, not per holder.
            caches = {id(runner.cache): runner.cache
                      for runner in runners if runner.cache is not None}
            if self.cache is not None:
                caches[id(self.cache)] = self.cache
            runner_counters["corrupt_evictions"] = sum(
                cache.corrupt_evictions for cache in caches.values())
            return self.metrics.snapshot(
                queued=len(self._queue),
                running=running,
                runner_counters=runner_counters,
                extra={
                    "queue": {
                        "depth": len(self._queue),
                        "bound": self._queue.bound,
                        "shards": self._queue.shards,
                    },
                    "quota": self._quota.snapshot(),
                    "draining": self._draining,
                    "workers": self.workers,
                },
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> str | None:
        """Execute one queued job inline; returns its key (or None).

        The deterministic single-threaded twin of the worker loop, for
        ``workers=0`` services driven by property tests.
        """
        with self._cond:
            key = self._queue.pop()
            if key is None:
                return None
            self._mark_running(key)
            if self._inline_runner is None:
                self._inline_runner = self._make_runner()
            runner = self._inline_runner
        self._execute_and_settle(key, runner)
        return key

    def _make_runner(self) -> SimulationRunner:
        cache = self.cache if self._shared_cache else (
            ResultCache(self._cache_dir) if self._cache_dir else None)
        kwargs = {"execute": self.execute} if self.execute is not None else {}
        return SimulationRunner(jobs=self.jobs, cache=cache,
                                retry=self.retry, timeout=self.timeout,
                                **kwargs)

    def _worker_loop(self) -> None:
        runner = self._make_runner()
        with self._cond:
            self._runners.append(runner)
        while True:
            with self._cond:
                while not self._draining and not len(self._queue):
                    self._cond.wait(0.1)
                if self._draining:
                    return
                key = self._queue.pop()
                if key is None:
                    continue
                self._mark_running(key)
            self._execute_and_settle(key, runner)

    def _mark_running(self, key: str) -> None:
        record = self._records[key]
        record.state = RUNNING
        record.started_at = time.monotonic()

    def _execute_and_settle(self, key: str,
                            runner: SimulationRunner) -> None:
        record = self._records[key]
        try:
            payload = runner.run_one(record.spec)
        except Exception as error:
            self._settle(record, FAILED,
                         error=f"{type(error).__name__}: {error}")
        else:
            self._settle(record, DONE, result=result_to_wire(payload))

    def _settle(self, record: JobRecord, state: str, *,
                result: dict | None = None, error: str | None = None) -> None:
        with self._cond:
            record.state = state
            record.result = result
            record.error = error
            record.finished_at = time.monotonic()
            self.metrics.record_latency(
                record.finished_at - record.submitted_at)
            for tenant, count in record.tenants.items():
                self._quota.release(tenant, count)
            record.tenants.clear()
            if state == DONE:
                self.metrics.completed += 1
                if self._journal is not None:
                    self._journal.record_done(record.key)
            else:
                self.metrics.failed += 1
                if self._journal is not None:
                    self._journal.record_failed(record.key, error or "")
            callbacks, info = self._take_callbacks(record)
            self._cond.notify_all()
        self._run_callbacks(callbacks, info)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _terminal_record(self, key: str, spec: JobSpec, state: str, *,
                         result: dict | None, submitted_at: float,
                         ) -> JobRecord:
        record = JobRecord(key=key, spec=spec, state=state, result=result,
                           submitted_at=submitted_at,
                           finished_at=submitted_at)
        self._records[key] = record
        return record

    def _poll_info(self, record: JobRecord, *, deduped: bool = False,
                   cached: bool = False) -> dict:
        return {
            "key": record.key,
            "state": record.state,
            "trace_name": record.spec.trace_name,
            "config_name": record.spec.config_name,
            "attachments": record.attachments,
            "deduped": deduped,
            "cached": cached,
            "result": record.result,
            "error": record.error,
        }

    def _take_callbacks(self, record: JobRecord) -> tuple[list, dict]:
        callbacks = record.callbacks
        record.callbacks = []
        return callbacks, self._poll_info(record)

    @staticmethod
    def _run_callbacks(callbacks: list, info: dict) -> None:
        for fn in callbacks:
            try:
                fn(info)
            except Exception:
                # A waiter's bridge (e.g. a closed event loop) must
                # never take the worker down with it.
                pass

    def _resume_from_journal(self) -> None:
        """Re-enqueue pending journaled jobs; rehydrate done ones."""
        requeue: list[tuple[str, dict, list[str]]] = []
        for key, entry in self._journal.entries.items():
            if entry["terminal"] != "done" or entry["spec"] is None:
                continue
            try:
                spec = spec_from_wire(entry["spec"])
            except ReproError:
                continue
            hit, payload = False, None
            if self.cache is not None:
                self.metrics.cache_lookups += 1
                hit, payload = self.cache.get(key)
            if not hit:
                # The journal says done but the payload is gone — the
                # entry was evicted as corrupt, or the cache directory
                # didn't survive the restart.  The result can no longer
                # be delivered, so the job must run again; dropping it
                # here would strand every waiter on an unknown key.
                requeue.append((key, entry["spec"],
                                list(entry["tenants"]) or ["default"]))
                self.metrics.requeued_lost += 1
                continue
            self.metrics.cache_hits += 1
            self._terminal_record(key, spec, DONE,
                                  result=result_to_wire(payload),
                                  submitted_at=time.monotonic())
        requeued_keys = {key for key, _, _ in requeue}
        for key, wire, tenants in requeue + self._journal.pending():
            try:
                spec = spec_from_wire(wire)
            except ReproError:
                continue  # journal written by an incompatible version
            now = time.monotonic()
            if self.cache is not None and key not in requeued_keys:
                # Crash window: the payload was published to the cache
                # but the ``done`` line never made it to the journal.
                self.metrics.cache_lookups += 1
                hit, payload = self.cache.get(key)
                if hit:
                    self.metrics.cache_hits += 1
                    self._terminal_record(key, spec, DONE,
                                          result=result_to_wire(payload),
                                          submitted_at=now)
                    self._journal.record_done(key)
                    continue
            record = JobRecord(key=key, spec=spec, state=QUEUED,
                               tenants=Counter(tenants), submitted_at=now)
            for tenant in record.tenants:
                for _ in range(record.tenants[tenant]):
                    self._quota.charge(tenant, force=True)
            self._records[key] = record
            self._queue.push(key, force=True)
            if key not in requeued_keys:
                self.metrics.resumed += 1
