"""IPCP at the L1-D: the bouquet of class prefetchers (Sections IV-V).

Every demand access trains all classifiers concurrently (they share one
IP-table entry), then the bouquet walks its priority order
GS > CS > CPLX > NL and issues prefetches for the first class the IP
belongs to.  When the winning class is running below the low accuracy
watermark, the walk continues so lower-priority classes can contribute
(the paper's coordinated throttling).  All prefetches stay within the
4 KB page, pass through the 32-entry RR filter instead of probing the
L1, and carry the 9-bit class metadata for the L2 IPCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.cspt import Cspt, update_signature
from repro.core.ip_table import IpEntry, IpTable
from repro.core.metadata import MetaClass, encode_metadata
from repro.core.rr_filter import RrFilter
from repro.core.rst import Rst
from repro.core.storage import ipcp_storage_report
from repro.core.temporal import TemporalTable
from repro.core.throttle import ClassThrottle, HIGH_WATERMARK
from repro.errors import ConfigurationError
from repro.params import LINES_PER_PAGE, LINES_PER_REGION
from repro.prefetchers.base import (
    AccessContext,
    AccessType,
    Prefetcher,
    PrefetchRequest,
)
from repro.telemetry import (
    CLASSIFY,
    DROP,
    DROP_PAGE,
    DROP_THROTTLE,
    EPOCH,
    ISSUE,
    NULL_RECORDER,
    USEFUL,
    Event,
    Recorder,
)

# Table I: IP table (36 b x 64) + CSPT (9 b x 128) + RST (53 b x 8)
# + 2 class bits x 768 L1 lines + RR filter (12 b x 32) = 5800 bits,
# plus 113 bits of counters/registers.
L1_STORAGE_BITS = 5913


class PfClass(IntEnum):
    """IPCP prefetch classes (used to tag requests for attribution)."""

    NONE = 0
    CS = 1
    CPLX = 2
    GS = 3
    NL = 4
    TS = 5  # optional temporal class (the paper's future-work extension)


_META_OF_CLASS = {
    PfClass.CS: MetaClass.CS,
    PfClass.GS: MetaClass.GS,
    PfClass.NL: MetaClass.NL,
    PfClass.CPLX: MetaClass.NONE,  # CPLX is never replayed at the L2
}


@dataclass(frozen=True)
class IpcpConfig:
    """Tunable knobs; defaults are the paper's L1 configuration."""

    cs_degree: int = 3
    cplx_degree: int = 3
    gs_degree: int = 6
    nl_mpki_threshold: float = 50.0
    ip_table_entries: int = 64
    cspt_entries: int = 128
    rst_entries: int = 8
    rr_entries: int = 32
    enable_cs: bool = True
    enable_cplx: bool = True
    enable_gs: bool = True
    enable_nl: bool = True
    # Paper future work (Section VII): temporal class for irregular but
    # recurring access orders.  Off by default (keeps the 895 B design).
    enable_temporal: bool = False
    temporal_entries: int = 16384
    temporal_degree: int = 2
    send_metadata: bool = True
    priority: tuple[PfClass, ...] = (
        PfClass.GS, PfClass.CS, PfClass.CPLX, PfClass.NL
    )
    throttling: bool = True

    def __post_init__(self) -> None:
        if min(self.cs_degree, self.cplx_degree, self.gs_degree) < 1:
            raise ConfigurationError("prefetch degrees must be >= 1")
        if set(self.priority) - {PfClass.GS, PfClass.CS, PfClass.CPLX, PfClass.NL}:
            raise ConfigurationError("priority may only contain GS/CS/CPLX/NL")
        if len(set(self.priority)) != len(self.priority):
            raise ConfigurationError("priority order contains duplicates")


class IpcpL1(Prefetcher):
    """The L1-D bouquet: CS + CPLX + GS + tentative NL."""

    def __init__(self, config: IpcpConfig | None = None,
                 recorder: Recorder | None = None) -> None:
        cfg = config or IpcpConfig()
        # Declared storage follows the configured geometry (Table I
        # recomputation), so resized-table variants stay honest under
        # the verify-phase storage_budget invariant.
        report = ipcp_storage_report(
            ip_table_entries=cfg.ip_table_entries,
            cspt_entries=cfg.cspt_entries,
            rst_entries=cfg.rst_entries,
            rr_entries=cfg.rr_entries,
        )
        super().__init__(name="ipcp", storage_bits=report.l1_bits)
        self.config = cfg
        self.ip_table = IpTable(entries=cfg.ip_table_entries)
        self.cspt = Cspt(entries=cfg.cspt_entries)
        self.rst = Rst(entries=cfg.rst_entries)
        self.rr_filter = RrFilter(entries=cfg.rr_entries)
        self.throttles: dict[PfClass, ClassThrottle] = {
            PfClass.CS: ClassThrottle(cfg.cs_degree),
            PfClass.CPLX: ClassThrottle(cfg.cplx_degree),
            PfClass.GS: ClassThrottle(cfg.gs_degree),
            PfClass.NL: ClassThrottle(1),
        }
        self.temporal: TemporalTable | None = None
        if cfg.enable_temporal:
            self.temporal = TemporalTable(
                entries=cfg.temporal_entries, degree=cfg.temporal_degree
            )
            self.throttles[PfClass.TS] = ClassThrottle(cfg.temporal_degree)
            self.storage_bits += self.temporal.storage_bits
        # Telemetry (observational only; never feeds back into decisions).
        # _cur_ip/_cur_cycle snapshot the triggering demand access so the
        # cache's fill/hit feedback can be attributed; _class_of_ip
        # remembers each IP's last winning class for (re)classification
        # events and is only populated while a live recorder is attached.
        self._cur_ip = 0
        self._cur_cycle = 0
        self._class_of_ip: dict[int, int] = {}
        self.attach_recorder(recorder if recorder is not None
                             else NULL_RECORDER)

    def attach_recorder(self, recorder: Recorder) -> None:
        """Wire ``recorder`` into the bouquet, RR filter and throttles."""
        self.recorder = recorder
        self.rr_filter.recorder = recorder
        for pf_class, throttle in self.throttles.items():
            throttle.on_epoch = self._epoch_hook(pf_class)

    def _epoch_hook(self, pf_class: PfClass):
        def hook(accuracy: float, prev_degree: int, degree: int) -> None:
            if self.recorder.enabled:
                self.recorder.emit(Event(
                    kind=EPOCH, level="l1", cycle=self._cur_cycle,
                    pf_class=int(pf_class), accuracy=accuracy,
                    degree=degree, prev_degree=prev_degree,
                ))
        return hook

    def batch_state(self) -> dict | None:
        """Live state handles for the batched engine (base-class hook).

        Exposes the IP table, CSPT, RST, RR filter and per-class
        throttles as direct references so
        :mod:`repro.sim.batched` can step them in place, leaving the
        bouquet in exactly the state a scalar run would.  Returns None
        — forcing the scalar fallback — when the temporal extension is
        enabled or a live recorder is attached, the two features the
        fused kernel does not replicate.
        """
        if self.temporal is not None or self.recorder.enabled:
            return None
        return {
            "config": self.config,
            "ip_table": self.ip_table,
            "cspt": self.cspt,
            "rst": self.rst,
            "rr_filter": self.rr_filter,
            "throttles": self.throttles,
        }

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def on_access(self, ctx: AccessContext) -> list[PrefetchRequest]:
        """Classify the IP, train all classes, emit bouquet prefetches.

        Runs the full L1 pipeline on one demand access: IP-table
        hysteresis, CS/CPLX/GS training, class arbitration by the
        configured priority, per-class throttled degree, RR-filter
        dedup, and metadata tagging for the L2 replayer.
        """
        if ctx.kind == AccessType.PREFETCH:
            return []
        if self.recorder.enabled:
            # Snapshot the trigger so feedback events (issue/useful,
            # which arrive without an access context) are attributable.
            self._cur_ip = ctx.ip
            self._cur_cycle = ctx.cycle
        line = ctx.addr >> 6
        self.rr_filter.insert(line)

        entry = self.ip_table.access(ctx.ip)
        rst_entry = self._train_gs(entry, line)
        stride = self._train_strides(entry, ctx.addr)
        if self.temporal is not None and entry is not None and entry.last_line:
            self.temporal.train(entry.last_line, line)

        if entry is not None:
            if rst_entry is not None and (rst_entry.trained or rst_entry.tentative):
                entry.stream_valid = True
                entry.direction = rst_entry.direction
            else:
                entry.stream_valid = False
            self.ip_table.record_access(entry, ctx.addr)

        return self._classify_and_issue(entry, line, stride, ctx.mpki)

    def _train_gs(self, entry: IpEntry | None, line: int):
        if not self.config.enable_gs:
            return None
        region = line // LINES_PER_REGION
        offset = line % LINES_PER_REGION
        previous_region = None
        if entry is not None and entry.last_line:
            previous_region = entry.last_line // LINES_PER_REGION
        return self.rst.observe(region, offset, previous_region)

    def _train_strides(self, entry: IpEntry | None, vaddr: int) -> int:
        """Train CS confidence and the CPLX signature; return the stride."""
        if entry is None or not entry.last_line:
            return 0
        stride = self.ip_table.compute_stride(entry, vaddr)
        if stride == 0:
            return 0
        # CS: 2-bit confidence on the constant stride.
        if stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        # CPLX: train the CSPT under the old signature, then roll it.
        if self.config.enable_cplx:
            self.cspt.train(entry.signature, stride)
            entry.signature = update_signature(entry.signature, stride)
        return stride

    # ------------------------------------------------------------------ #
    # Classification + issue
    # ------------------------------------------------------------------ #

    def _classify_and_issue(
        self,
        entry: IpEntry | None,
        line: int,
        stride: int,
        mpki: float,
    ) -> list[PrefetchRequest]:
        cfg = self.config
        eligible: dict[PfClass, bool] = {
            PfClass.GS: (
                cfg.enable_gs and entry is not None and entry.stream_valid
            ),
            PfClass.CS: (
                cfg.enable_cs
                and entry is not None
                and entry.confidence >= 2
                and entry.stride != 0
            ),
            PfClass.CPLX: cfg.enable_cplx and entry is not None,
            # Tentative NL: only for *tracked* IPs that fit no class (an
            # IP losing the hysteresis duel issues nothing), and only
            # while the L1 MPKI is low enough to afford speculation.
            PfClass.NL: (
                cfg.enable_nl
                and entry is not None
                and mpki < cfg.nl_mpki_threshold
            ),
        }

        requests: list[PrefetchRequest] = []
        claimed = False
        for pf_class in cfg.priority:
            if not eligible.get(pf_class, False):
                continue
            deltas, meta_stride = self._deltas_for_class(pf_class, entry)
            if pf_class is PfClass.CPLX and not deltas:
                continue  # CSPT confidence too low: fall through to NL
            if self.recorder.enabled:
                self._record_decision(pf_class, first=not claimed)
            requests.extend(self._emit(pf_class, line, deltas, meta_stride))
            claimed = True
            if cfg.throttling and self.throttles[pf_class].low_accuracy:
                continue  # low accuracy: let lower-priority classes explore
            break
        if self.temporal is not None and not claimed:
            # Future-work temporal class: cover irregular-but-recurring
            # orders that no spatial class claimed.
            chain = self.temporal.predict_chain(line)
            metadata = self._metadata_for(PfClass.NL, 0)
            for successor in chain:
                if self.rr_filter.check_and_insert(
                    successor, self._cur_ip, int(PfClass.TS), self._cur_cycle
                ):
                    continue
                requests.append(PrefetchRequest(
                    addr=successor << 6,
                    metadata=metadata,
                    pf_class=int(PfClass.TS),
                ))
        return requests

    def _record_decision(self, pf_class: PfClass, first: bool) -> None:
        """Telemetry for one class claiming the access (recording only).

        Emits a ``classify`` event when the access's *winning* (first
        claiming) class differs from the IP's previous winner, and a
        ``drop``/``throttle`` event when accuracy throttling has pinched
        the class degree below its default — one event per truncated
        burst, with ``prev_degree - degree`` candidates suppressed.
        """
        rec = self.recorder
        throttle = self.throttles[pf_class]
        if self.config.throttling and throttle.degree < throttle.default_degree:
            rec.emit(Event(
                kind=DROP, level="l1", cycle=self._cur_cycle,
                ip=self._cur_ip, pf_class=int(pf_class),
                reason=DROP_THROTTLE, degree=throttle.degree,
                prev_degree=throttle.default_degree,
            ))
        if first:
            previous = self._class_of_ip.get(self._cur_ip, 0)
            if previous != int(pf_class):
                rec.emit(Event(
                    kind=CLASSIFY, level="l1", cycle=self._cur_cycle,
                    ip=self._cur_ip, pf_class=int(pf_class),
                    prev_class=previous,
                ))
                self._class_of_ip[self._cur_ip] = int(pf_class)

    def _deltas_for_class(
        self, pf_class: PfClass, entry: IpEntry | None
    ) -> tuple[list[int], int]:
        """Line deltas this class wants to prefetch, plus its metadata stride."""
        degree = (
            self.throttles[pf_class].degree
            if self.config.throttling
            else self.throttles[pf_class].default_degree
        )
        if pf_class is PfClass.CS:
            return [entry.stride * k for k in range(1, degree + 1)], entry.stride
        if pf_class is PfClass.GS:
            return [entry.direction * k for k in range(1, degree + 1)], entry.direction
        if pf_class is PfClass.CPLX:
            return self.cspt.predict_chain(entry.signature, degree), 0
        return [1], 0  # NL

    def _emit(
        self, pf_class: PfClass, line: int, deltas: list[int], meta_stride: int
    ) -> list[PrefetchRequest]:
        page = line // LINES_PER_PAGE
        metadata = self._metadata_for(pf_class, meta_stride)
        rec = self.recorder
        rec_on = rec.enabled
        requests = []
        for delta in deltas:
            target = line + delta
            if target // LINES_PER_PAGE != page or target < 0:
                if rec_on:
                    rec.emit(Event(
                        kind=DROP, level="l1", cycle=self._cur_cycle,
                        ip=self._cur_ip, addr=target << 6 if target >= 0 else 0,
                        pf_class=int(pf_class), reason=DROP_PAGE,
                    ))
                continue  # spatial prefetcher: never cross the page
            if self.rr_filter.check_and_insert(
                target, self._cur_ip, int(pf_class), self._cur_cycle
            ):
                self.bump("rr_filter_drops")
                continue
            requests.append(
                PrefetchRequest(
                    addr=target << 6,
                    metadata=metadata,
                    pf_class=int(pf_class),
                )
            )
        return requests

    def _metadata_for(self, pf_class: PfClass, stride: int) -> int:
        if not self.config.send_metadata:
            return 0
        meta_class = _META_OF_CLASS[pf_class]
        # Strides ride to the L2 only when the class accuracy is > 75%
        # so the L2 never replays a low-accuracy pattern.
        if self.throttles[pf_class].accuracy < HIGH_WATERMARK:
            stride = 0
        return encode_metadata(meta_class, stride)

    # ------------------------------------------------------------------ #
    # Feedback from the cache (drives the throttler)
    # ------------------------------------------------------------------ #

    def on_prefetch_fill(self, addr: int, pf_class: int) -> None:
        """Count a filled prefetch toward its class's throttle epoch."""
        if self.recorder.enabled:
            # The cache calls this exactly when it counts an issued-and-
            # filled prefetch, so `issue` events reconcile 1:1 with
            # `pf_issued_by_class` (IPCP always fills at this level).
            self.recorder.emit(Event(
                kind=ISSUE, level="l1", cycle=self._cur_cycle,
                ip=self._cur_ip, addr=addr, pf_class=pf_class,
            ))
        throttle = self.throttles.get(PfClass(pf_class))
        if throttle is not None:
            throttle.on_fill()

    def on_prefetch_hit(self, addr: int, pf_class: int) -> None:
        """Credit a useful prefetch to its class's accuracy counter."""
        if self.recorder.enabled:
            self.recorder.emit(Event(
                kind=USEFUL, level="l1", cycle=self._cur_cycle,
                ip=self._cur_ip, addr=addr, pf_class=pf_class,
            ))
        throttle = self.throttles.get(PfClass(pf_class))
        if throttle is not None:
            throttle.on_hit()
