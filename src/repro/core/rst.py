"""Region Stream Table (RST) for the GS class (Fig. 4).

The GS class detects *global streams*: bursty, near-contiguous accesses
within a 2 KB region coming from many IPs.  The 8-entry LRU RST tracks,
per region, a 32-bit line bit-vector (density), a saturating direction
counter (initialised to the midpoint; positive deltas increment,
negative decrement) and three state bits:

* ``trained``   — >= 75% of the region's 32 lines were touched;
* ``tentative`` — the region was promoted because the same IP's
  *previous* region trained dense (control flow predicts data flow),
  letting prefetching start before this region itself trains;
* ``dense``     — running density flag.

When a demand access lands in a region whose trained or tentative bit
is set, the accessing IP is classified GS with the region's direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import LINES_PER_REGION

GS_TRAIN_THRESHOLD = int(LINES_PER_REGION * 0.75)  # 24 of 32 lines
DIRECTION_BITS = 6
DIRECTION_MID = 1 << (DIRECTION_BITS - 1)  # counter starts at 2^n / 2
DIRECTION_MAX = (1 << DIRECTION_BITS) - 1


@dataclass
class RstEntry:
    """Per-region tracking state (53 bits in hardware, Table I)."""

    region: int = 0
    bit_vector: int = 0
    last_line_offset: int = 0  # 5 bits: 0..31 within the region
    pos_neg_count: int = DIRECTION_MID
    dense: bool = False
    trained: bool = False
    tentative: bool = False
    direction: int = 1

    @property
    def touched_lines(self) -> int:
        """Population count of the line bit-vector."""
        return bin(self.bit_vector).count("1")


class Rst:
    """8-entry LRU region stream table."""

    def __init__(self, entries: int = 8) -> None:
        self.entries = entries
        self._table: dict[int, RstEntry] = {}  # insertion order = LRU order

    def lookup(self, region: int) -> RstEntry | None:
        """Return the entry tracking ``region``, refreshing its LRU slot."""
        entry = self._table.get(region)
        if entry is not None:
            self._table.pop(region)
            self._table[region] = entry
        return entry

    def allocate(self, region: int, tentative: bool) -> RstEntry:
        """Allocate (evicting LRU if needed) an entry for a new region."""
        if len(self._table) >= self.entries:
            oldest = next(iter(self._table))
            del self._table[oldest]
        entry = RstEntry(region=region, tentative=tentative)
        self._table[region] = entry
        return entry

    def observe(self, region: int, line_offset: int, previous_region: int | None
                ) -> RstEntry:
        """Record one demand access at ``line_offset`` of ``region``.

        ``previous_region`` is the region this access's IP touched last;
        if that region already trained dense, the fresh region starts
        tentative (the paper's control-flow-predicted-data-flow hook).
        Returns the (possibly new) entry after updating density and
        direction state.
        """
        entry = self.lookup(region)
        if entry is None:
            tentative = False
            if previous_region is not None and previous_region != region:
                prev = self._table.get(previous_region)
                tentative = prev is not None and prev.trained
            entry = self.allocate(region, tentative)
            entry.last_line_offset = line_offset

        bit = 1 << line_offset
        if not entry.bit_vector & bit:
            entry.bit_vector |= bit
            if entry.touched_lines >= GS_TRAIN_THRESHOLD:
                entry.trained = True
                entry.dense = True

        delta = line_offset - entry.last_line_offset
        if delta > 0:
            entry.pos_neg_count = min(DIRECTION_MAX, entry.pos_neg_count + 1)
        elif delta < 0:
            entry.pos_neg_count = max(0, entry.pos_neg_count - 1)
        entry.direction = 1 if entry.pos_neg_count >= DIRECTION_MID else -1
        entry.last_line_offset = line_offset
        return entry
