"""Optional temporal (TS) class for IPCP — the paper's future work.

Section VII: "enhancing IPCP with a temporal component for covering
temporal and irregular accesses" (and the paper notes all temporal
prefetchers can use IPCP as their spatial counterpart because IPCP is
under 900 bytes).  This module adds exactly that: a bounded
Markov-style successor table that trains on the per-IP access stream
and fires only when *no spatial class claimed the access* — irregular
traffic with recurring temporal order (mcf/omnetpp-style loops over
pointer structures) that CS/CPLX/GS structurally cannot cover.

It is disabled by default (``IpcpConfig(enable_temporal=True)`` turns
it on) so the baseline IPCP stays exactly the paper's 895-byte design;
the storage of the temporal table is accounted separately.
"""

from __future__ import annotations

from collections import OrderedDict

CONFIDENCE_MAX = 3


class TemporalTable:
    """Bounded line-successor predictor with 2-bit confidence."""

    def __init__(self, entries: int = 4096, degree: int = 2) -> None:
        self.entries = entries
        self.degree = degree
        # line -> [successor_line, confidence]
        self._table: OrderedDict[int, list] = OrderedDict()

    def train(self, previous_line: int, line: int) -> None:
        """Record that ``line`` followed ``previous_line``."""
        if previous_line == line:
            return
        entry = self._table.get(previous_line)
        if entry is None:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)
            self._table[previous_line] = [line, 1]
            return
        self._table.move_to_end(previous_line)
        if entry[0] == line:
            entry[1] = min(CONFIDENCE_MAX, entry[1] + 1)
        else:
            entry[1] -= 1
            if entry[1] <= 0:
                entry[0] = line
                entry[1] = 1

    def predict_chain(self, line: int, degree: int | None = None
                      ) -> list[int]:
        """Follow confident successors up to ``degree`` lines deep."""
        degree = degree if degree is not None else self.degree
        chain = []
        current = line
        seen = {line}
        for _ in range(degree):
            entry = self._table.get(current)
            if entry is None or entry[1] < 1 or entry[0] in seen:
                break
            chain.append(entry[0])
            seen.add(entry[0])
            current = entry[0]
        return chain

    @property
    def storage_bits(self) -> int:
        """On-chip budget of the table (successor pointer + confidence)."""
        return self.entries * (36 + 2)

    def __len__(self) -> int:
        return len(self._table)
