"""IPCP at the L2: metadata-driven multi-level prefetching (Section V).

The L2 never trains its own classifier — the L1 access stream is
unrecoverable at the L2 once L1 prefetches jumble it.  Instead, every
L1 prefetch arriving at the L2 carries the 9-bit class metadata; the L2
decodes it into a 64-entry bookkeeping IP table (19 bits per entry:
IP tag, valid, 2-bit class, 7-bit stride/direction).  On *demand*
accesses the L2 replays the recorded class deeper — degree 4 for CS and
GS, using the L2's larger PQ (16) and MSHR (32).  CPLX is never
replayed at the L2 (the paper found it hurts).  NL-class arrivals
trigger an immediate next-line prefetch, gated by an L2 MPKI
threshold of 40.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metadata import MetaClass, decode_metadata
from repro.core.ipcp_l1 import PfClass
from repro.errors import ConfigurationError
from repro.params import LINES_PER_PAGE
from repro.prefetchers.base import (
    AccessContext,
    AccessType,
    Prefetcher,
    PrefetchRequest,
)
from repro.telemetry import (
    DROP,
    DROP_PAGE,
    ISSUE,
    META,
    NULL_RECORDER,
    USEFUL,
    Event,
    Recorder,
)

# Table I: IP table (19 b x 64) + tentative-NL bit + 10 b miss counter
# + 10 b instruction counter = 1237 bits.
L2_STORAGE_BITS = 1237


@dataclass
class L2IpEntry:
    """Bookkeeping entry decoded from L1 metadata."""

    tag: int = 0
    valid: bool = False
    meta_class: MetaClass = MetaClass.NONE
    stride: int = 0


class IpcpL2(Prefetcher):
    """The metadata consumer at the L2."""

    def __init__(
        self,
        entries: int = 64,
        cs_degree: int = 4,
        gs_degree: int = 4,
        nl_mpki_threshold: float = 40.0,
        recorder: Recorder | None = None,
    ) -> None:
        super().__init__(name="ipcp_l2", storage_bits=L2_STORAGE_BITS)
        if entries < 1 or cs_degree < 1 or gs_degree < 1:
            raise ConfigurationError("IpcpL2 sizes/degrees must be >= 1")
        self.entries = entries
        self.cs_degree = cs_degree
        self.gs_degree = gs_degree
        self.nl_mpki_threshold = nl_mpki_threshold
        self._index_mask = entries - 1
        self._tag_mask = (1 << 9) - 1
        self._table = [L2IpEntry() for _ in range(entries)]
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._cur_ip = 0
        self._cur_cycle = 0

    def attach_recorder(self, recorder: Recorder) -> None:
        """Attach a telemetry recorder (observational only)."""
        self.recorder = recorder

    def _split(self, ip: int) -> tuple[int, int]:
        index = ip & self._index_mask
        tag = (ip >> self.entries.bit_length() - 1) & self._tag_mask
        return index, tag

    def batch_state(self) -> dict | None:
        """Live state handles for the batched engine (base-class hook).

        Exposes the bookkeeping IP table (plus its index/tag geometry
        and replay knobs) as direct references so
        :mod:`repro.sim.batched` can decode metadata and replay classes
        in place.  Returns None — forcing the scalar fallback — while a
        live recorder is attached.
        """
        if self.recorder.enabled:
            return None
        return {
            "table": self._table,
            "index_mask": self._index_mask,
            "tag_shift": self.entries.bit_length() - 1,
            "tag_mask": self._tag_mask,
            "cs_degree": self.cs_degree,
            "gs_degree": self.gs_degree,
            "nl_mpki_threshold": self.nl_mpki_threshold,
        }

    def on_access(self, ctx: AccessContext) -> list[PrefetchRequest]:
        """Replay the L1's classification from the metadata packet.

        The L2 does not re-train: it decodes the 9-bit class/stride
        metadata riding on each L1 prefetch and issues deeper requests
        along the same pattern, throttled by its own accuracy counters.
        """
        if self.recorder.enabled:
            self._cur_ip = ctx.ip
            self._cur_cycle = ctx.cycle
        if ctx.kind == AccessType.PREFETCH:
            return self._on_prefetch_arrival(ctx)
        return self._on_demand(ctx)

    def _on_prefetch_arrival(self, ctx: AccessContext) -> list[PrefetchRequest]:
        """Decode L1 metadata; extend the pattern deeper from the L2.

        This is the paper's "prefetch deep based on the L1 access
        stream but from L2 and till L2": every L1 prefetch request
        reaching the L2 both updates the bookkeeping table and pushes
        the recorded CS/GS pattern ``degree`` lines further ahead.
        """
        meta_class, stride = decode_metadata(ctx.metadata)
        index, tag = self._split(ctx.ip)
        entry = self._table[index]
        entry.tag = tag
        entry.valid = True
        entry.meta_class = meta_class
        entry.stride = stride
        self.bump(f"decoded_{meta_class.name.lower()}")
        if self.recorder.enabled:
            # One event per L1->L2 metadata packet, as decoded.
            self.recorder.emit(Event(
                kind=META, level="l2", cycle=ctx.cycle, ip=ctx.ip,
                addr=ctx.addr, reason=meta_class.name.lower(),
                stride=stride,
            ))
        line = ctx.addr >> 6
        if meta_class is MetaClass.CS and stride != 0:
            deltas = [stride * k for k in range(1, self.cs_degree + 1)]
            return self._emit(line, deltas, PfClass.CS)
        if meta_class is MetaClass.GS and stride != 0:
            direction = 1 if stride > 0 else -1
            deltas = [direction * k for k in range(1, self.gs_degree + 1)]
            return self._emit(line, deltas, PfClass.GS)
        if meta_class is MetaClass.NL and ctx.mpki < self.nl_mpki_threshold:
            return self._emit(line, [1], PfClass.NL)
        return []

    def _on_demand(self, ctx: AccessContext) -> list[PrefetchRequest]:
        index, tag = self._split(ctx.ip)
        entry = self._table[index]
        line = ctx.addr >> 6
        if entry.valid and entry.tag == tag:
            if entry.meta_class is MetaClass.CS and entry.stride != 0:
                deltas = [entry.stride * k for k in range(1, self.cs_degree + 1)]
                return self._emit(line, deltas, PfClass.CS)
            if entry.meta_class is MetaClass.GS and entry.stride != 0:
                direction = 1 if entry.stride > 0 else -1
                deltas = [direction * k for k in range(1, self.gs_degree + 1)]
                return self._emit(line, deltas, PfClass.GS)
        if ctx.mpki < self.nl_mpki_threshold:
            return self._emit(line, [1], PfClass.NL)
        return []

    def _emit(
        self, line: int, deltas: list[int], pf_class: PfClass
    ) -> list[PrefetchRequest]:
        page = line // LINES_PER_PAGE
        rec = self.recorder
        rec_on = rec.enabled
        requests = []
        for delta in deltas:
            target = line + delta
            if target // LINES_PER_PAGE != page or target < 0:
                if rec_on:
                    rec.emit(Event(
                        kind=DROP, level="l2", cycle=self._cur_cycle,
                        ip=self._cur_ip,
                        addr=target << 6 if target >= 0 else 0,
                        pf_class=int(pf_class), reason=DROP_PAGE,
                    ))
                continue
            requests.append(PrefetchRequest(addr=target << 6, pf_class=int(pf_class)))
        return requests

    # ------------------------------------------------------------------ #
    # Feedback from the cache (telemetry only; the L2 has no throttler)
    # ------------------------------------------------------------------ #

    def on_prefetch_fill(self, addr: int, pf_class: int) -> None:
        """Count a filled L2 prefetch toward its class's throttle."""
        if self.recorder.enabled:
            self.recorder.emit(Event(
                kind=ISSUE, level="l2", cycle=self._cur_cycle,
                ip=self._cur_ip, addr=addr, pf_class=pf_class,
            ))

    def on_prefetch_hit(self, addr: int, pf_class: int) -> None:
        """Credit a useful L2 prefetch to its class's accuracy."""
        if self.recorder.enabled:
            self.recorder.emit(Event(
                kind=USEFUL, level="l2", cycle=self._cur_cycle,
                ip=self._cur_ip, addr=addr, pf_class=pf_class,
            ))
