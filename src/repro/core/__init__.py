"""IPCP: Instruction Pointer Classifier-based spatial Prefetching.

The paper's contribution.  :class:`IpcpL1` is the bouquet of tiny
class prefetchers at the L1-D (CS, CPLX, GS, tentative NL) built around
a shared 64-entry IP table; :class:`IpcpL2` is the metadata-driven L2
companion.  :func:`ipcp_storage_report` regenerates Table I's storage
accounting bit-for-bit.
"""

from repro.core.ipcp_l1 import IpcpConfig, IpcpL1, PfClass
from repro.core.ipcp_l2 import IpcpL2
from repro.core.metadata import decode_metadata, encode_metadata
from repro.core.storage import ipcp_storage_report

__all__ = [
    "IpcpConfig",
    "IpcpL1",
    "IpcpL2",
    "PfClass",
    "decode_metadata",
    "encode_metadata",
    "ipcp_storage_report",
]
