"""The 9-bit L1 -> L2 metadata packet (Section V, "Metadata Decoding").

Every prefetch IPCP issues from the L1 carries 9 bits on the otherwise
unused L1->L2 bus wires: a 2-bit class type and a 7-bit two's-complement
stride (for CS) or stream direction (for GS).  The IP itself is not in
the packet — the request's IP accompanies it anyway.
"""

from __future__ import annotations

from enum import IntEnum

from repro.core.ip_table import SIGNATURE_MASK, clamp_stride


class MetaClass(IntEnum):
    """2-bit class-type field: three classes plus "no class"."""

    NONE = 0
    CS = 1
    GS = 2
    NL = 3


def encode_metadata(meta_class: MetaClass, stride: int = 0) -> int:
    """Pack (class, stride/direction) into the 9-bit wire format.

    The stride saturates into the symmetric [-63, +63] range (see
    :func:`repro.core.ip_table.clamp_stride` for why -64 is excluded
    even though the two's-complement field can hold it), so
    ``decode_metadata(encode_metadata(c, s))`` round-trips exactly for
    every stride in that range and ``encode_metadata(c, -64) ==
    encode_metadata(c, -63)``.
    """
    stride = clamp_stride(stride)
    return (int(meta_class) << 7) | (stride & SIGNATURE_MASK)


def decode_metadata(packet: int) -> tuple[MetaClass, int]:
    """Unpack a 9-bit packet into (class, signed stride)."""
    meta_class = MetaClass((packet >> 7) & 0x3)
    raw = packet & SIGNATURE_MASK
    stride = raw - 128 if raw >= 64 else raw  # 7-bit two's complement
    return meta_class, stride
