"""Table I: IPCP hardware storage accounting, recomputed bit-for-bit.

The paper's headline "895 bytes for the entire cache hierarchy" is an
exact sum of named per-structure bit counts; this module rebuilds that
sum from the structure geometries so the Table I benchmark can assert
the numbers rather than hard-code them.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

# Field widths from Fig. 5 / Fig. 6 / Table I.
IP_TABLE_ENTRY_BITS = 9 + 1 + 2 + 6 + 7 + 2 + 1 + 1 + 7  # = 36
CSPT_ENTRY_BITS = 7 + 2  # = 9
RST_ENTRY_BITS = 3 + 5 + 32 + 6 + 1 + 1 + 1 + 1 + 3  # = 53
RR_TAG_BITS = 12
L1_CLASS_BITS_PER_LINE = 2
L2_IP_TABLE_ENTRY_BITS = 9 + 1 + 2 + 7  # = 19


@dataclass(frozen=True)
class StorageReport:
    """Bit/byte budgets for one IPCP deployment."""

    l1_table_bits: int
    l1_other_bits: int
    l2_bits: int

    @property
    def l1_bits(self) -> int:
        """All L1 storage in bits."""
        return self.l1_table_bits + self.l1_other_bits

    @property
    def l1_bytes(self) -> int:
        """L1 storage rounded up to bytes (the paper's 740 B)."""
        return ceil(self.l1_bits / 8)

    @property
    def l2_bytes(self) -> int:
        """L2 storage rounded up to bytes (the paper's 155 B)."""
        return ceil(self.l2_bits / 8)

    @property
    def total_bytes(self) -> int:
        """Framework total (the paper's 895 B)."""
        return self.l1_bytes + self.l2_bytes


def ipcp_storage_report(
    ip_table_entries: int = 64,
    cspt_entries: int = 128,
    rst_entries: int = 8,
    rr_entries: int = 32,
    l1_sets: int = 64,
    l1_ways: int = 12,
    l2_ip_table_entries: int = 64,
) -> StorageReport:
    """Recompute Table I for a given (default: the paper's) geometry."""
    table_bits = (
        IP_TABLE_ENTRY_BITS * ip_table_entries
        + CSPT_ENTRY_BITS * cspt_entries
        + RST_ENTRY_BITS * rst_entries
        + L1_CLASS_BITS_PER_LINE * l1_sets * l1_ways
        + RR_TAG_BITS * rr_entries
    )
    # "Others" row of Table I: 1 tentative-NL bit, 8-bit issued and hit
    # counters for each of 4 classes, 10-bit miss and instruction
    # counters, 7-bit accuracy registers for the 3 throttled classes and
    # one 7-bit MPKI register = 113 bits.
    other_bits = 1 + 8 * 4 + 8 * 4 + 10 + 10 + 7 * 3 + 7
    l2_bits = L2_IP_TABLE_ENTRY_BITS * l2_ip_table_entries + 1 + 10 + 10
    return StorageReport(
        l1_table_bits=table_bits,
        l1_other_bits=other_bits,
        l2_bits=l2_bits,
    )
