"""Complex Stride Prediction Table (CSPT) for the CPLX class (Fig. 3).

The CPLX class handles per-IP stride sequences that are *locally*
complex (1,2,1,2,... or 3,3,4,3,3,4,...).  A 7-bit signature hashes the
last strides seen by an IP (``signature = (signature << 1) XOR
stride``); the 128-entry direct-mapped CSPT maps a signature to the
predicted next stride with a 2-bit confidence counter.  At prediction
time the signature is rolled forward through the table up to the
prefetch degree, producing a look-ahead chain of strides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ip_table import SIGNATURE_MASK, clamp_stride

CONFIDENCE_MAX = 3


def update_signature(signature: int, stride: int) -> int:
    """Fold a (7-bit two's complement) stride into the signature."""
    return ((signature << 1) ^ (stride & SIGNATURE_MASK)) & SIGNATURE_MASK


@dataclass
class CsptEntry:
    """Predicted next stride for one signature: 7-bit stride + 2-bit conf."""

    stride: int = 0
    confidence: int = 0


class Cspt:
    """128-entry direct-mapped complex stride prediction table."""

    def __init__(self, entries: int = 128) -> None:
        self.entries = entries
        self._mask = entries - 1
        self._table = [CsptEntry() for _ in range(entries)]

    def lookup(self, signature: int) -> CsptEntry:
        """Entry predicted by ``signature`` (direct-mapped, untagged)."""
        return self._table[signature & self._mask]

    def train(self, signature: int, observed_stride: int) -> None:
        """Confirm or weaken the prediction stored under ``signature``.

        Same stride seen again: confidence up.  Different stride:
        confidence down; when it hits zero the new stride takes over.
        """
        observed_stride = clamp_stride(observed_stride)
        entry = self.lookup(signature)
        if entry.stride == observed_stride and observed_stride != 0:
            entry.confidence = min(CONFIDENCE_MAX, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = observed_stride

    def predict_chain(self, signature: int, degree: int) -> list[int]:
        """Roll the signature forward, collecting confident strides.

        Returns the cumulative line deltas for up to ``degree``
        prefetches; stops at the first low-confidence or zero-stride
        prediction (the paper's step 3).
        """
        deltas = []
        offset = 0
        for _ in range(degree):
            entry = self.lookup(signature)
            if entry.confidence < 1 or entry.stride == 0:
                break
            offset += entry.stride
            deltas.append(offset)
            signature = update_signature(signature, entry.stride)
        return deltas
