"""The shared, direct-mapped IP table at the heart of IPCP (Fig. 5).

One 64-entry table serves all three classes: the IP-tag, valid bit,
last virtual page (2 LSBs) and last line-offset fields are shared; the
CS class adds a 7-bit stride and 2-bit confidence, the GS class a
stream-valid and direction bit, and the CPLX class a 7-bit stride
signature.

Collisions between IPs mapping to the same entry are resolved with the
paper's *hysteresis* scheme: the first time a different IP-tag arrives
the valid bit is merely cleared (the incumbent stays); only if the entry
is already invalid does the newcomer take over.  This guarantees at
least one of two competing IPs keeps training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import LINES_PER_PAGE, page_of, page_offset_line

STRIDE_MAX = 63  # 7-bit signed stride field saturates at +63 ...
STRIDE_MIN = -63  # ... and symmetrically at -63 (never the wire's -64)
SIGNATURE_MASK = 0x7F  # 7-bit CPLX signature


def clamp_stride(stride: int) -> int:
    """Saturate a line stride into the 7-bit signed hardware field.

    The wire format is two's complement, so it *can* represent -64, but
    the saturation range is deliberately the symmetric [-63, +63]:

    * a +-64-line stride always leaves the trigger's 4 KB page (64
      lines), so no prefetch a -64 stride could describe would ever be
      issued — the asymmetric extreme buys nothing;
    * symmetric saturation keeps negation closed (``clamp(-s) ==
      -clamp(s)``), so CS confidence duels and the CSPT signature hash
      treat forward and backward walks of the same loop identically.

    :func:`repro.core.metadata.decode_metadata` still decodes a raw
    0x40 field as -64 (the wire meaning), but no encoder produces it.
    """
    return max(STRIDE_MIN, min(STRIDE_MAX, stride))


@dataclass
class IpEntry:
    """One IP-table entry; field widths follow Fig. 5 / Table I."""

    tag: int = 0
    valid: bool = False
    last_vpage: int = 0  # 2 LSBs of the virtual page
    last_line_offset: int = 0  # 0..63 within the page
    stride: int = 0  # CS: 7-bit signed constant stride
    confidence: int = 0  # CS: 2-bit saturating counter
    stream_valid: bool = False  # GS
    direction: int = 1  # GS: +1 / -1
    signature: int = 0  # CPLX: 7-bit stride signature
    # Simulation-only shadow (not counted in storage): the full last line
    # address, used to find the IP's previous 2 KB region for the GS
    # tentative-promotion check without re-deriving it from partial bits.
    last_line: int = field(default=0, repr=False)
    seen_once: bool = field(default=False, repr=False)


class IpTable:
    """64-entry direct-mapped, tagged IP table with hysteresis."""

    def __init__(self, entries: int = 64, tag_bits: int = 9) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self._index_mask = entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._table = [IpEntry() for _ in range(entries)]

    def _split(self, ip: int) -> tuple[int, int]:
        index = ip & self._index_mask
        tag = (ip >> self.entries.bit_length() - 1) & self._tag_mask
        return index, tag

    def lookup(self, ip: int) -> IpEntry | None:
        """Return the entry for ``ip`` if it currently owns its slot."""
        index, tag = self._split(ip)
        entry = self._table[index]
        if entry.seen_once and entry.tag == tag:
            return entry
        return None

    def access(self, ip: int) -> IpEntry | None:
        """Look up ``ip``, applying the hysteresis replacement rule.

        Returns the entry when ``ip`` owns (or takes over) the slot, or
        None when a competing IP holds the slot with its valid bit set
        (the newcomer only clears the bit this time).
        """
        index, tag = self._split(ip)
        entry = self._table[index]
        if entry.seen_once and entry.tag == tag:
            entry.valid = True
            return entry
        if entry.valid:
            entry.valid = False  # hysteresis: incumbent survives one challenge
            return None
        # Take over the slot for the new IP.
        self._table[index] = IpEntry(tag=tag, valid=True, seen_once=True)
        return self._table[index]

    def compute_stride(self, entry: IpEntry, vaddr: int) -> int:
        """Line stride between this access and the entry's previous one.

        Handles the page-change case the paper describes: a +1 page
        change with offsets 63 -> 0 yields (0 - 63) + 64 = stride 1.
        Detection uses the 2 LSBs of the virtual page, so contiguous
        forward/backward page walks are recognised.
        """
        cur_offset = page_offset_line(vaddr)
        cur_vpage = page_of(vaddr) & 0x3
        last_offset = entry.last_line_offset
        stride = cur_offset - last_offset
        if cur_vpage != entry.last_vpage:
            delta = (cur_vpage - entry.last_vpage) & 0x3
            if delta == 1:  # next page
                stride += LINES_PER_PAGE
            elif delta == 3:  # previous page
                stride -= LINES_PER_PAGE
            else:
                stride = 0  # jumped pages: no meaningful stride
        return clamp_stride(stride)

    def record_access(self, entry: IpEntry, vaddr: int) -> None:
        """Update the shared last-page/last-offset fields after training."""
        entry.last_vpage = page_of(vaddr) & 0x3
        entry.last_line_offset = page_offset_line(vaddr)
        entry.last_line = vaddr >> 6
