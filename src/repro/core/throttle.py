"""Per-class, epoch-based prefetch-accuracy throttling (Section V).

Each class owns two counters — prefetches filled and prefetch hits —
and a current degree.  Once every 256 per-class prefetch fills the
accuracy over the epoch is computed:

* accuracy > 0.75 (high watermark): degree steps up toward the class's
  default;
* accuracy < 0.40 (low watermark): degree steps down toward 1;
* in between: unchanged.

The throttler also exposes the last measured accuracy so (a) the
bouquet can let lower-priority classes prefetch alongside a
low-accuracy high-priority class, and (b) the L1 only embeds stride
metadata for the L2 when the class is running above 75% accuracy.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

EPOCH_FILLS = 256
HIGH_WATERMARK = 0.75
LOW_WATERMARK = 0.40


@dataclass
class ClassThrottle:
    """Accuracy-driven degree controller for one IPCP class."""

    default_degree: int
    degree: int = 0
    epoch_fills: int = 0
    epoch_hits: int = 0
    accuracy: float = 1.0  # optimistic until the first epoch completes
    # Telemetry hook: called as on_epoch(accuracy, prev_degree, degree)
    # after every epoch close.  Purely observational — the controller's
    # decisions never depend on it.
    on_epoch: Callable[[float, int, int], None] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.degree == 0:
            self.degree = self.default_degree

    def on_fill(self) -> None:
        """One of this class's prefetches was filled."""
        self.epoch_fills += 1
        if self.epoch_fills >= EPOCH_FILLS:
            self._close_epoch()

    def on_hit(self) -> None:
        """One of this class's prefetched blocks saw a demand hit."""
        self.epoch_hits += 1

    def _close_epoch(self) -> None:
        prev_degree = self.degree
        self.accuracy = self.epoch_hits / self.epoch_fills
        if self.accuracy > HIGH_WATERMARK:
            self.degree = min(self.default_degree, self.degree + 1)
        elif self.accuracy < LOW_WATERMARK:
            self.degree = max(1, self.degree - 1)
        self.epoch_fills = 0
        self.epoch_hits = 0
        if self.on_epoch is not None:
            self.on_epoch(self.accuracy, prev_degree, self.degree)

    @property
    def low_accuracy(self) -> bool:
        """True when the class is running below the low watermark."""
        return self.accuracy < LOW_WATERMARK

    @property
    def high_accuracy(self) -> bool:
        """True when the class is running above the high watermark."""
        return self.accuracy >= HIGH_WATERMARK
