"""Recent-request (RR) filter.

The L1-D is bandwidth starved, so IPCP never probes the cache before
issuing a prefetch.  Instead a tiny 32-entry filter remembers the
partial tags of recently seen demand lines and recently generated
prefetch addresses; a prefetch whose line hits the filter is dropped,
since the block is almost certainly in the L1 or its MSHRs already.

The filter is a telemetry emitter: when a recorder is attached, every
drop it causes becomes a ``drop``/``rr_hit`` event carrying the
triggering IP and prefetch class (see :mod:`repro.telemetry`).  With
the default null recorder the emission path reduces to one flag test.
"""

from __future__ import annotations

from collections import deque

from repro.telemetry import DROP, DROP_RR, Event, NULL_RECORDER, Recorder


class RrFilter:
    """32-entry FIFO of 12-bit partial line tags."""

    def __init__(self, entries: int = 32, tag_bits: int = 12,
                 recorder: Recorder | None = None) -> None:
        self.entries = entries
        self._tag_mask = (1 << tag_bits) - 1
        self._fifo: deque[int] = deque(maxlen=entries)
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def _tag(self, line: int) -> int:
        return (line ^ (line >> 12)) & self._tag_mask

    def insert(self, line: int) -> None:
        """Remember a line (demand access or generated prefetch)."""
        self._fifo.append(self._tag(line))

    def contains(self, line: int) -> bool:
        """Was an aliasing line seen recently? (Prefetch should be dropped.)"""
        return self._tag(line) in self._fifo

    def check_and_insert(self, line: int, ip: int = 0, pf_class: int = 0,
                         cycle: int = 0) -> bool:
        """Probe then record; returns True when the prefetch must be dropped.

        ``ip``/``pf_class``/``cycle`` describe the triggering access for
        telemetry only; they never influence the filter decision.
        """
        tag = self._tag(line)
        if tag in self._fifo:
            if self.recorder.enabled:
                self.recorder.emit(Event(
                    kind=DROP, level="l1", cycle=cycle, ip=ip,
                    addr=line << 6, pf_class=pf_class, reason=DROP_RR,
                ))
            return True
        self._fifo.append(tag)
        return False

    def __len__(self) -> int:
        return len(self._fifo)
