"""Recent-request (RR) filter.

The L1-D is bandwidth starved, so IPCP never probes the cache before
issuing a prefetch.  Instead a tiny 32-entry filter remembers the
partial tags of recently seen demand lines and recently generated
prefetch addresses; a prefetch whose line hits the filter is dropped,
since the block is almost certainly in the L1 or its MSHRs already.
"""

from __future__ import annotations

from collections import deque


class RrFilter:
    """32-entry FIFO of 12-bit partial line tags."""

    def __init__(self, entries: int = 32, tag_bits: int = 12) -> None:
        self.entries = entries
        self._tag_mask = (1 << tag_bits) - 1
        self._fifo: deque[int] = deque(maxlen=entries)

    def _tag(self, line: int) -> int:
        return (line ^ (line >> 12)) & self._tag_mask

    def insert(self, line: int) -> None:
        """Remember a line (demand access or generated prefetch)."""
        self._fifo.append(self._tag(line))

    def contains(self, line: int) -> bool:
        """Was an aliasing line seen recently? (Prefetch should be dropped.)"""
        return self._tag(line) in self._fifo

    def check_and_insert(self, line: int) -> bool:
        """Probe then record; returns True when the prefetch must be dropped."""
        tag = self._tag(line)
        if tag in self._fifo:
            return True
        self._fifo.append(tag)
        return False

    def __len__(self) -> int:
        return len(self._fifo)
