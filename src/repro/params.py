"""System-wide address-geometry constants and parameter dataclasses.

The defaults mirror Table II of the paper ("Simulated System
parameters"): a 4 GHz, 4-wide core with a 256-entry ROB, a 48 KB 12-way
L1-D (5-cycle latency, PQ 8, MSHR 16), a 512 KB 8-way L2 (10 cycles,
PQ 16, MSHR 32), a 2 MB/core 16-way LLC (20 cycles, PQ 32/core,
MSHR 64/core) and 1600 MT/s DDR4 DRAM (one channel per core for
single-core runs, two channels for multi-core runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

# Address geometry (fixed across the paper's experiments).
LINE_SIZE = 64
LINE_BITS = 6
PAGE_SIZE = 4096
PAGE_BITS = 12
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE  # 64 cache lines per 4 KB page

# GS-class region geometry (Section IV-C: 2 KB regions, 32 lines).
REGION_SIZE = 2048
REGION_BITS = 11
LINES_PER_REGION = REGION_SIZE // LINE_SIZE  # 32


def line_of(addr: int) -> int:
    """Return the cache-line index (address >> 6) of a byte address."""
    return addr >> LINE_BITS


def line_addr(addr: int) -> int:
    """Return the byte address aligned down to its cache line."""
    return addr & ~(LINE_SIZE - 1)


def page_of(addr: int) -> int:
    """Return the 4 KB page number of a byte address."""
    return addr >> PAGE_BITS


def page_offset_line(addr: int) -> int:
    """Return the cache-line offset (0..63) of the address within its page."""
    return (addr >> LINE_BITS) & (LINES_PER_PAGE - 1)


def region_of(addr: int) -> int:
    """Return the 2 KB region number of a byte address."""
    return addr >> REGION_BITS


def region_offset_line(addr: int) -> int:
    """Return the cache-line offset (0..31) of the address within its region."""
    return (addr >> LINE_BITS) & (LINES_PER_REGION - 1)


def same_page(addr_a: int, addr_b: int) -> bool:
    """Return True when two byte addresses fall in the same 4 KB page."""
    return page_of(addr_a) == page_of(addr_b)


@dataclass(frozen=True)
class CacheParams:
    """Geometry and resource limits for one cache level."""

    name: str
    size: int
    ways: int
    latency: int
    pq_entries: int
    mshr_entries: int
    replacement: str = "lru"
    line_size: int = LINE_SIZE

    def __post_init__(self) -> None:
        if self.size <= 0 or self.ways <= 0:
            raise ConfigurationError(
                f"{self.name}: size and ways must be positive "
                f"(got size={self.size}, ways={self.ways})"
            )
        if self.size % (self.ways * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size} is not a multiple of "
                f"ways*line_size ({self.ways}*{self.line_size})"
            )
        sets = self.size // (self.ways * self.line_size)
        if sets & (sets - 1) != 0:
            raise ConfigurationError(
                f"{self.name}: number of sets ({sets}) must be a power of two"
            )
        if self.latency < 1:
            raise ConfigurationError(f"{self.name}: latency must be >= 1")
        if self.pq_entries < 0 or self.mshr_entries < 1:
            raise ConfigurationError(
                f"{self.name}: pq_entries must be >= 0 and mshr_entries >= 1"
            )

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size // (self.ways * self.line_size)


@dataclass(frozen=True)
class DramParams:
    """DRAM channel-bandwidth queuing model parameters.

    ``bandwidth_gbps`` is the per-channel peak bandwidth; the default
    12.8 GB/s matches one DDR4-1600 64-bit channel.  ``base_latency`` is
    the unloaded access latency in core cycles.
    """

    channels: int = 1
    bandwidth_gbps: float = 12.8
    base_latency: int = 160
    core_ghz: float = 4.0

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError("DRAM needs at least one channel")
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        if self.base_latency < 1:
            raise ConfigurationError("DRAM base latency must be >= 1")

    @property
    def cycles_per_line(self) -> float:
        """Core cycles a channel is busy transferring one 64 B line."""
        bytes_per_cycle = self.bandwidth_gbps / self.core_ghz
        return LINE_SIZE / bytes_per_cycle


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core model parameters (Table II: 4 GHz, 4-wide, 256 ROB)."""

    width: int = 4
    rob_size: int = 256

    def __post_init__(self) -> None:
        if self.width < 1 or self.rob_size < 1:
            raise ConfigurationError("core width and ROB size must be >= 1")


def default_l1d() -> CacheParams:
    """Table II L1-D: 48 KB, 12-way, 5 cycles, PQ 8, MSHR 16."""
    return CacheParams("L1D", 48 * 1024, 12, 5, 8, 16)


def default_l2() -> CacheParams:
    """Table II L2: 512 KB, 8-way, 10 cycles, PQ 16, MSHR 32."""
    return CacheParams("L2", 512 * 1024, 8, 10, 16, 32)


def default_llc(cores: int = 1) -> CacheParams:
    """Table II LLC: 2 MB/core, 16-way, 20 cycles, PQ 32/core, MSHR 64/core."""
    return CacheParams(
        "LLC", 2 * 1024 * 1024 * cores, 16, 20, 32 * cores, 64 * cores
    )


@dataclass(frozen=True)
class SystemParams:
    """Full single-core (or per-core) system configuration.

    ``model_tlb`` enables the Table II DTLB/STLB on the load path.
    """

    core: CoreParams = field(default_factory=CoreParams)
    l1d: CacheParams = field(default_factory=default_l1d)
    l2: CacheParams = field(default_factory=default_l2)
    llc: CacheParams = field(default_factory=default_llc)
    dram: DramParams = field(default_factory=DramParams)
    model_tlb: bool = True
