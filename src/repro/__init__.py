"""repro: a reproduction of "Bouquet of Instruction Pointers" (ISCA 2020).

Public API tour:

* :mod:`repro.core` — IPCP itself (:class:`~repro.core.IpcpL1`,
  :class:`~repro.core.IpcpL2`).
* :mod:`repro.prefetchers` — the baselines the paper compares against,
  plus the name registry (``make_prefetcher("bingo")`` ...).
* :mod:`repro.sim` — trace format, core model,
  :func:`~repro.sim.simulate` and :func:`~repro.sim.simulate_mix`.
* :mod:`repro.memsys` — caches, DRAM, virtual memory.
* :mod:`repro.workloads` — synthetic SPEC-2017-like trace generators.
* :mod:`repro.stats` — metrics (coverage, accuracy, MPKI, speedups).
* :mod:`repro.runner` — parallel job runner and persistent
  content-addressed result cache behind every experiment grid.
"""

from repro.core import IpcpConfig, IpcpL1, IpcpL2
from repro.sim import Trace, simulate, simulate_mix

__version__ = "1.0.0"

__all__ = [
    "IpcpConfig",
    "IpcpL1",
    "IpcpL2",
    "Trace",
    "simulate",
    "simulate_mix",
    "__version__",
]
