"""Retry policy, failure classification and degraded-mode failure cells.

The fault-tolerant runner never retries blindly: every exception coming
out of a job is first *classified* against the taxonomy in
:mod:`repro.errors` —

========================  ==========  =================================
classification            retried?    examples
========================  ==========  =================================
``transient``             yes         :class:`TransientJobError`,
                                      :class:`WorkerCrashError`,
                                      ``BrokenProcessPool``
``timeout``               policy      :class:`JobTimeout` (worker killed
                                      by the runner's deadline)
``fatal``                 never       everything else — a bad spec or a
                                      simulator bug; re-running cannot
                                      help
========================  ==========  =================================

Backoff is exponential with **deterministic jitter**: the jitter factor
is a pure hash of ``(seed, job key, attempt)``, so two runs of the same
batch sleep identically and a chaos-recovery run stays reproducible.
"""

from __future__ import annotations

import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.errors import JobTimeout, TransientJobError

TRANSIENT = "transient"
TIMEOUT = "timeout"
FATAL = "fatal"


def classify_failure(error: BaseException) -> str:
    """Map an exception to ``transient`` / ``timeout`` / ``fatal``."""
    if isinstance(error, JobTimeout):
        return TIMEOUT
    if isinstance(error, (TransientJobError, BrokenProcessPool,
                          ConnectionError, InterruptedError)):
        return TRANSIENT
    return FATAL


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts every execution of a job including the
    first, so ``max_attempts=1`` disables retrying entirely.  The delay
    before attempt ``n+1`` is ``backoff_base * backoff_factor**(n-1)``
    capped at ``backoff_max``, stretched by up to ``jitter`` of itself
    using a hash of ``(seed, key, attempt)`` — deterministic, but
    decorrelated across jobs so a whole batch retrying at once does not
    stampede.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    retry_timeouts: bool = True
    seed: int = 0

    def should_retry(self, classification: str, attempt: int) -> bool:
        """Whether a job that failed on ``attempt`` gets another one."""
        if attempt >= self.max_attempts:
            return False
        if classification == TRANSIENT:
            return True
        if classification == TIMEOUT:
            return self.retry_timeouts
        return False

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``key`` after ``attempt``."""
        if self.backoff_base <= 0.0:
            return 0.0
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))
        token = f"{self.seed}:{key}:{attempt}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        unit = int.from_bytes(digest, "big") / 2.0 ** 64
        return base * (1.0 + self.jitter * unit)


@dataclass(frozen=True)
class JobFailure:
    """Terminal failure of one job, carried as a degraded-mode result.

    In degraded mode the runner resolves a job that exhausted its
    attempt budget (or failed fatally) to a ``JobFailure`` instead of
    aborting the batch, so a sweep renders a partial grid with explicit
    ``FAILED(reason)`` cells.  Every output slot of a duplicated spec
    shares the same failure.
    """

    key: str
    error_type: str
    message: str
    attempts: int

    @classmethod
    def from_error(cls, key: str, error: BaseException,
                   attempts: int) -> "JobFailure":
        return cls(key=key, error_type=type(error).__name__,
                   message=str(error), attempts=attempts)

    @property
    def reason(self) -> str:
        return f"{self.error_type}: {self.message}"

    def __str__(self) -> str:
        return f"FAILED({self.error_type})"
