"""Fault-tolerant execution layer for the simulation runner.

The paper's evaluation grids (and anything production-scale built on
them) run for long enough that faults are a certainty, not an edge
case.  This package gives :class:`repro.runner.SimulationRunner` the
four survivability properties a long sweep needs:

* **retry** — :class:`RetryPolicy`: bounded attempts with exponential
  backoff and deterministic jitter, gated on the failure taxonomy in
  :mod:`repro.errors` (transient vs fatal vs timeout);
* **timeouts + crash recovery** — per-job wall-clock deadlines and
  ``BrokenProcessPool`` handling that kill/respawn the worker pool and
  re-dispatch only the unresolved jobs;
* **checkpoint/resume** — :class:`CheckpointJournal`: an append-only
  journal of resolved cache keys, so an interrupted sweep resumes with
  zero recomputation, plus :class:`JobFailure` cells so degraded runs
  render partial grids instead of aborting;
* **chaos** — :mod:`repro.resilience.chaos`: a deterministic, seeded
  fault-injection harness (worker crashes, hangs, transient errors,
  corrupt cache entries) that proves recovered runs are bit-identical
  to fault-free runs (``repro chaos``, ``tests/test_chaos.py``).

See ``docs/resilience.md`` for semantics and the failure taxonomy
table.  :mod:`~repro.resilience.chaos` is imported lazily (it depends
on the runner package) — use ``from repro.resilience import chaos``.
"""

from repro.resilience.journal import CheckpointJournal, flush_active_journals
from repro.resilience.policy import (
    FATAL,
    JobFailure,
    RetryPolicy,
    TIMEOUT,
    TRANSIENT,
    classify_failure,
)

__all__ = [
    "CheckpointJournal",
    "FATAL",
    "JobFailure",
    "RetryPolicy",
    "TIMEOUT",
    "TRANSIENT",
    "classify_failure",
    "flush_active_journals",
]
