"""Append-only checkpoint journal for interruptible sweeps.

A :class:`CheckpointJournal` records, one JSON line per event, the
resolution of every job in a long run: ``done`` lines name cache keys
whose payloads were published to the :class:`~repro.runner.cache.
ResultCache`, ``failed`` lines carry the failure taxonomy for cells
that exhausted their retry budget.  Lines are flushed as they are
written, so the journal is crash-consistent by construction — killing
the process mid-run loses at most the jobs that were literally in
flight.

On resume, a runner pointed at the same journal and cache re-simulates
*nothing* that already resolved: ``done`` keys are cache hits, and in
degraded mode ``failed`` keys surface immediately as
:class:`~repro.resilience.policy.JobFailure` cells without burning a
fresh attempt budget on a known-fatal cell.

A half-written trailing line (the writer was SIGKILLed mid-append) is
skipped on load rather than treated as corruption, and so are runs of
NUL bytes: journalling filesystems that replay a metadata-only commit
after power loss can leave a pre-allocated tail of ``\\x00`` where the
flushed data never hit the platter.  Both cases are counted in
:attr:`CheckpointJournal.skipped_lines` so a resume can report how
much of the journal was unreadable.
"""

from __future__ import annotations

import json
import os
import weakref

from repro.errors import CheckpointError
from repro.resilience.policy import JobFailure

DONE = "done"
FAILED = "failed"

# Open journals, so the CLI can flush every one of them on
# KeyboardInterrupt regardless of which command object holds them.
_ACTIVE: "weakref.WeakSet[CheckpointJournal]" = weakref.WeakSet()


def flush_active_journals() -> int:
    """Flush every open journal (returns how many were flushed)."""
    count = 0
    for journal in list(_ACTIVE):
        journal.flush()
        count += 1
    return count


class CheckpointJournal:
    """Append-only record of resolved cache keys for one sweep."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.entries: dict[str, dict] = {}
        self.skipped_lines = 0
        directory = os.path.dirname(path)
        if directory:
            try:
                os.makedirs(directory, exist_ok=True)
            except (FileExistsError, NotADirectoryError) as error:
                raise CheckpointError(
                    f"journal directory {directory!r} is not writable"
                ) from error
        if os.path.exists(path):
            self._load()
        try:
            self._fh = open(path, "a", encoding="utf-8")
        except OSError as error:
            raise CheckpointError(
                f"cannot open checkpoint journal {path!r}: {error}"
            ) from error
        _ACTIVE.add(self)

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path!r}: {error}"
            ) from error
        for raw in lines:
            # NUL runs come from crash-replayed filesystem pre-allocation
            # (see module docstring); strip them from both edges so an
            # entry that survived next to a padded tail still loads.
            line = raw.strip().strip("\x00").strip()
            if not line:
                if raw.strip():  # pure NUL padding, not a blank line
                    self.skipped_lines += 1
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                status = entry["status"]
            except (ValueError, TypeError, KeyError):
                # A writer killed mid-append leaves a torn final line;
                # everything before it is still a valid checkpoint.
                self.skipped_lines += 1
                continue
            if status in (DONE, FAILED):
                self.entries[key] = entry

    def _write(self, entry: dict) -> None:
        self.entries[entry["key"]] = entry
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def record_done(self, key: str, **extra) -> None:
        """Mark a key as resolved and published to the cache.

        ``extra`` fields ride along in the journal entry — the ingest
        converter checkpoints per-chunk byte offsets this way so a
        resumed conversion can seek instead of re-reading.
        """
        entry = dict(extra)
        entry["key"] = key
        entry["status"] = DONE
        self._write(entry)

    def record_failed(self, key: str, failure: JobFailure) -> None:
        """Mark a key as terminally failed (with its taxonomy)."""
        self._write({
            "key": key,
            "status": FAILED,
            "error_type": failure.error_type,
            "message": failure.message,
            "attempts": failure.attempts,
        })

    def failure_for(self, key: str) -> JobFailure | None:
        """The recorded failure for a key, if it terminally failed."""
        entry = self.entries.get(key)
        if entry is None or entry.get("status") != FAILED:
            return None
        return JobFailure(
            key=key,
            error_type=entry.get("error_type", "JobError"),
            message=entry.get("message", ""),
            attempts=int(entry.get("attempts", 0)),
        )

    @property
    def done_keys(self) -> set[str]:
        return {key for key, entry in self.entries.items()
                if entry.get("status") == DONE}

    @property
    def failed_keys(self) -> set[str]:
        return {key for key, entry in self.entries.items()
                if entry.get("status") == FAILED}

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()
        _ACTIVE.discard(self)

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
