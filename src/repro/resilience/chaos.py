"""Deterministic, seeded fault injection for the execution layer.

``chaos_execute_job`` wraps :func:`repro.runner.job.execute_job` and
:class:`ChaosCache` wraps :class:`repro.runner.cache.ResultCache`;
together they inject the four fault families the resilience layer must
absorb:

* **crash** — the worker process dies mid-job (``os._exit``; when no
  worker process exists, a :class:`WorkerCrashError` stands in),
* **hang** — the job sleeps past any sane deadline, so a configured
  per-job timeout fires and the runner kills the worker,
* **transient** — the job raises :class:`TransientJobError`,
* **corrupt** — a freshly published cache entry is truncated on disk,
  so the next read fails its digest check and recomputes.

Every decision is a pure function of ``(plan.seed, job key, attempt,
fault kind)`` — no global RNG, no wall clock — so a chaos run is
bit-reproducible and a test can replay the exact same fault schedule.
Faults only fire on attempts ``<= plan.fault_attempts``; as long as the
retry budget exceeds that, every chaotic run converges to the same
results as a fault-free run, which is the property ``repro chaos`` and
``tests/test_chaos.py`` prove.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.errors import TransientJobError, WorkerCrashError
from repro.runner.cache import ResultCache
from repro.runner.job import JobSpec, execute_job

CRASH = "crash"
HANG = "hang"
TRANSIENT = "transient"
CORRUPT = "corrupt"

# Exit status of a chaos-crashed worker; distinctive in core dumps/logs.
CRASH_EXIT_CODE = 37


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault schedule (picklable, crosses into workers intact).

    Rates partition the unit interval, so at most one execution fault
    (crash/hang/transient) fires per attempt and their sum must be
    <= 1.0.  ``corrupt_rate`` is rolled independently at publish time.

    ``forced`` pins faults to named cells — a tuple of
    ``((trace_name, config_name), kind)`` pairs — bypassing the random
    roll for those cells.  Rate draws hash the cache key, which shifts
    whenever the simulator's code salt changes; a forced schedule is
    how a test *guarantees* a specific fault mix across code versions.
    """

    seed: int = 1
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    fault_attempts: int = 1
    forced: tuple = ()

    def __post_init__(self) -> None:
        total = self.crash_rate + self.hang_rate + self.transient_rate
        if total > 1.0 + 1e-9:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"chaos execution fault rates sum to {total:.3f} > 1.0"
            )

    def roll(self, key: str, attempt: int, kind: str) -> float:
        """Deterministic uniform [0, 1) draw for one fault decision."""
        token = f"{self.seed}:{key}:{attempt}:{kind}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def execution_fault(self, key: str, attempt: int) -> str | None:
        """Which execution fault (if any) fires for this attempt."""
        if attempt > self.fault_attempts:
            return None
        draw = self.roll(key, attempt, "exec")
        if draw < self.crash_rate:
            return CRASH
        if draw < self.crash_rate + self.hang_rate:
            return HANG
        if draw < self.crash_rate + self.hang_rate + self.transient_rate:
            return TRANSIENT
        return None

    def corrupts(self, key: str) -> bool:
        """Whether the first publish of this key gets corrupted."""
        return self.roll(key, 1, CORRUPT) < self.corrupt_rate

    def fault_for(self, spec: "JobSpec", attempt: int) -> str | None:
        """The fault (if any) for one job attempt: forced, then rolled.

        Forced entries are ``((trace_name, config_name), kind)`` or
        ``((trace_name, config_name), kind, max_attempt)`` — the
        optional third element bounds how many attempts of that cell
        fault (default: ``plan.fault_attempts``).
        """
        for entry in self.forced:
            (trace_name, config_name), kind = entry[0], entry[1]
            if (trace_name == spec.trace_name
                    and config_name == spec.config_name):
                limit = entry[2] if len(entry) > 2 else self.fault_attempts
                return kind if attempt <= limit else None
        return self.execution_fault(spec.cache_key(), attempt)


def chaos_execute_job(spec: JobSpec, attempt: int = 1,
                      plan: ChaosPlan | None = None):
    """Execute a job, injecting the scheduled fault for this attempt.

    Module-level (and driven through :func:`functools.partial` with a
    picklable plan) so it dispatches under every multiprocessing start
    method, exactly like the real :func:`execute_job`.
    """
    if plan is not None:
        fault = plan.fault_for(spec, attempt)
        if fault == CRASH:
            if multiprocessing.parent_process() is not None:
                os._exit(CRASH_EXIT_CODE)
            # No worker process to kill in in-process mode; the
            # equivalent observable failure is a worker-crash error.
            raise WorkerCrashError(
                f"chaos: injected worker crash ({spec.trace_name}/"
                f"{spec.config_name}, attempt {attempt})"
            )
        if fault == HANG:
            # Sleep past the runner's deadline; with a timeout set the
            # worker is killed mid-sleep, without one the job merely
            # finishes late — either way the payload stays correct.
            time.sleep(plan.hang_seconds)
        elif fault == TRANSIENT:
            raise TransientJobError(
                f"chaos: injected transient failure ({spec.trace_name}/"
                f"{spec.config_name}, attempt {attempt})"
            )
    return execute_job(spec)


class ChaosCache:
    """ResultCache proxy that corrupts scheduled entries after publish.

    Each scheduled key is truncated exactly once (on its first
    ``put``), so the poisoned entry fails its digest check on the next
    ``get``, gets evicted and recomputed, and the republished entry
    survives — the recovery path the real cache promises for killed
    writers and disk errors.
    """

    def __init__(self, inner: ResultCache, plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.corrupted_keys: set[str] = set()

    @property
    def corruptions(self) -> int:
        return len(self.corrupted_keys)

    def get(self, key: str) -> tuple[bool, object]:
        return self.inner.get(key)

    def put(self, key: str, payload: object) -> None:
        self.inner.put(key, payload)
        if key in self.corrupted_keys or not self.plan.corrupts(key):
            return
        self.corrupted_keys.add(key)
        entry = self.inner._entry_path(key)
        try:
            with open(entry, "rb") as fh:
                blob = fh.read()
            with open(entry, "wb") as fh:
                fh.write(blob[: max(1, len(blob) // 2)])
        except OSError:
            self.corrupted_keys.discard(key)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __len__(self) -> int:
        return len(self.inner)
