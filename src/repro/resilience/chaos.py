"""Deterministic, seeded fault injection for the execution layer.

``chaos_execute_job`` wraps :func:`repro.runner.job.execute_job` and
:class:`ChaosCache` wraps :class:`repro.runner.cache.ResultCache`;
together they inject the four fault families the resilience layer must
absorb:

* **crash** — the worker process dies mid-job (``os._exit``; when no
  worker process exists, a :class:`WorkerCrashError` stands in),
* **hang** — the job sleeps past any sane deadline, so a configured
  per-job timeout fires and the runner kills the worker,
* **transient** — the job raises :class:`TransientJobError`,
* **corrupt** — a freshly published cache entry is truncated on disk,
  so the next read fails its digest check and recomputes.

Every decision is a pure function of ``(plan.seed, job key, attempt,
fault kind)`` — no global RNG, no wall clock — so a chaos run is
bit-reproducible and a test can replay the exact same fault schedule.
Faults only fire on attempts ``<= plan.fault_attempts``; as long as the
retry budget exceeds that, every chaotic run converges to the same
results as a fault-free run, which is the property ``repro chaos`` and
``tests/test_chaos.py`` prove.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.errors import TransientJobError, WorkerCrashError
from repro.runner.cache import ResultCache
from repro.runner.job import JobSpec, execute_job

CRASH = "crash"
HANG = "hang"
TRANSIENT = "transient"
CORRUPT = "corrupt"

# Exit status of a chaos-crashed worker; distinctive in core dumps/logs.
CRASH_EXIT_CODE = 37


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault schedule (picklable, crosses into workers intact).

    Rates partition the unit interval, so at most one execution fault
    (crash/hang/transient) fires per attempt and their sum must be
    <= 1.0.  ``corrupt_rate`` is rolled independently at publish time.

    ``forced`` pins faults to named cells — a tuple of
    ``((trace_name, config_name), kind)`` pairs — bypassing the random
    roll for those cells.  Rate draws hash the cache key, which shifts
    whenever the simulator's code salt changes; a forced schedule is
    how a test *guarantees* a specific fault mix across code versions.
    """

    seed: int = 1
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    fault_attempts: int = 1
    forced: tuple = ()

    def __post_init__(self) -> None:
        total = self.crash_rate + self.hang_rate + self.transient_rate
        if total > 1.0 + 1e-9:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"chaos execution fault rates sum to {total:.3f} > 1.0"
            )

    def roll(self, key: str, attempt: int, kind: str) -> float:
        """Deterministic uniform [0, 1) draw for one fault decision."""
        token = f"{self.seed}:{key}:{attempt}:{kind}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def execution_fault(self, key: str, attempt: int) -> str | None:
        """Which execution fault (if any) fires for this attempt."""
        if attempt > self.fault_attempts:
            return None
        draw = self.roll(key, attempt, "exec")
        if draw < self.crash_rate:
            return CRASH
        if draw < self.crash_rate + self.hang_rate:
            return HANG
        if draw < self.crash_rate + self.hang_rate + self.transient_rate:
            return TRANSIENT
        return None

    def corrupts(self, key: str) -> bool:
        """Whether the first publish of this key gets corrupted."""
        return self.roll(key, 1, CORRUPT) < self.corrupt_rate

    def fault_for(self, spec: "JobSpec", attempt: int) -> str | None:
        """The fault (if any) for one job attempt: forced, then rolled.

        Forced entries are ``((trace_name, config_name), kind)`` or
        ``((trace_name, config_name), kind, max_attempt)`` — the
        optional third element bounds how many attempts of that cell
        fault (default: ``plan.fault_attempts``).
        """
        for entry in self.forced:
            (trace_name, config_name), kind = entry[0], entry[1]
            if (trace_name == spec.trace_name
                    and config_name == spec.config_name):
                limit = entry[2] if len(entry) > 2 else self.fault_attempts
                return kind if attempt <= limit else None
        return self.execution_fault(spec.cache_key(), attempt)


def chaos_execute_job(spec: JobSpec, attempt: int = 1,
                      plan: ChaosPlan | None = None):
    """Execute a job, injecting the scheduled fault for this attempt.

    Module-level (and driven through :func:`functools.partial` with a
    picklable plan) so it dispatches under every multiprocessing start
    method, exactly like the real :func:`execute_job`.
    """
    if plan is not None:
        fault = plan.fault_for(spec, attempt)
        if fault == CRASH:
            if multiprocessing.parent_process() is not None:
                os._exit(CRASH_EXIT_CODE)
            # No worker process to kill in in-process mode; the
            # equivalent observable failure is a worker-crash error.
            raise WorkerCrashError(
                f"chaos: injected worker crash ({spec.trace_name}/"
                f"{spec.config_name}, attempt {attempt})"
            )
        if fault == HANG:
            # Sleep past the runner's deadline; with a timeout set the
            # worker is killed mid-sleep, without one the job merely
            # finishes late — either way the payload stays correct.
            time.sleep(plan.hang_seconds)
        elif fault == TRANSIENT:
            raise TransientJobError(
                f"chaos: injected transient failure ({spec.trace_name}/"
                f"{spec.config_name}, attempt {attempt})"
            )
    return execute_job(spec)


class ChaosCache:
    """ResultCache proxy that corrupts scheduled entries after publish.

    Each scheduled key is truncated exactly once (on its first
    ``put``), so the poisoned entry fails its digest check on the next
    ``get``, gets evicted and recomputed, and the republished entry
    survives — the recovery path the real cache promises for killed
    writers and disk errors.
    """

    def __init__(self, inner: ResultCache, plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.corrupted_keys: set[str] = set()

    @property
    def corruptions(self) -> int:
        return len(self.corrupted_keys)

    def get(self, key: str) -> tuple[bool, object]:
        return self.inner.get(key)

    def put(self, key: str, payload: object) -> None:
        self.inner.put(key, payload)
        if key in self.corrupted_keys or not self.plan.corrupts(key):
            return
        self.corrupted_keys.add(key)
        entry = self.inner._entry_path(key)
        try:
            with open(entry, "rb") as fh:
                blob = fh.read()
            with open(entry, "wb") as fh:
                fh.write(blob[: max(1, len(blob) // 2)])
        except OSError:
            self.corrupted_keys.discard(key)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __len__(self) -> int:
        return len(self.inner)


# ---------------------------------------------------------------------------
# Input-fault schedules for the ingestion layer (repro.ingest).
#
# Same philosophy as ChaosPlan — every fault is a pure function of
# (seed, record index, fault kind) — but aimed at the *bytes on disk*
# rather than the execution layer: seeded bit flips inside k6 command
# tokens, interleaved garbage lines, mid-stream truncation, and
# whole-record byte reversal (wrong endianness) for binary traces.
#
# Each corruptor returns the exact clean-record indices it destroyed,
# which is what makes the lenient-mode contract *checkable*: a lenient
# ingest of the faulted bytes must yield precisely the clean trace
# minus the returned victims, bit for bit.  Every injected fault is
# guaranteed-invalid by construction (a single-bit flip in a k6
# command can never produce the other valid command, and a reversed
# binary record is re-damaged if its marker byte would survive), so a
# fault can never silently mutate a record into different-but-valid
# data — it is either dropped and counted, or the corruptor is wrong.
# ---------------------------------------------------------------------------

BIT_FLIP = "bit-flip"
GARBAGE = "garbage"
TRUNCATE = "truncate"
BYTE_REVERSE = "byte-reverse"


@dataclass(frozen=True)
class InputFaultPlan:
    """Seeded schedule of byte-level trace damage.

    ``flip_rate`` is the per-record chance of damage (a command-token
    bit flip for k6 text, a whole-record byte reversal for binary);
    ``garbage_rate`` the per-record chance of an interleaved garbage
    line (k6 only); ``truncate_fraction`` > 0 cuts the stream mid-
    record at roughly that fraction of its length.
    """

    seed: int = 1
    flip_rate: float = 0.0
    garbage_rate: float = 0.0
    truncate_fraction: float = 0.0

    def roll(self, index: int, kind: str) -> float:
        """Deterministic uniform [0, 1) draw for one fault decision."""
        token = f"{self.seed}:{index}:{kind}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass
class CorruptionResult:
    """Faulted bytes plus the ground truth of what was destroyed."""

    data: bytes
    victims: list[int]      # clean-record indices that no longer survive
    garbage_lines: int = 0  # interleaved invalid lines (k6 only)
    truncated: bool = False

    @property
    def injected_faults(self) -> int:
        """Faults a lenient reader should count (victims + garbage)."""
        return len(self.victims) + self.garbage_lines + (
            1 if self.truncated else 0)


def corrupt_k6_text(clean: bytes, plan: InputFaultPlan) -> CorruptionResult:
    """Apply a fault schedule to canonical k6 text.

    ``clean`` must be canonical (as written by
    :func:`repro.ingest.k6.write_k6`: one record per line, no blanks
    or comments), so line index == record index.
    """
    lines = clean.decode("ascii").splitlines()
    out: list[tuple[bytes, int | None]] = []  # (line, clean index | None)
    victims: set[int] = set()
    garbage_lines = 0
    for index, text in enumerate(lines):
        if plan.roll(index, GARBAGE) < plan.garbage_rate:
            # One field, starts with '!': can never parse as a record.
            out.append((f"!!garbage:{index}!!".encode(), None))
            garbage_lines += 1
        if plan.roll(index, BIT_FLIP) < plan.flip_rate:
            addr, command, cycle = text.split()
            pos = int(plan.roll(index, "bytepos") * len(command))
            bit = int(plan.roll(index, "bitpos") * 8)
            flipped = bytearray(command.encode())
            flipped[pos] ^= 1 << bit
            damaged = b" ".join(
                (addr.encode(), bytes(flipped), cycle.encode()))
            out.append((damaged, index))
            victims.add(index)
        else:
            out.append((text.encode(), index))
    truncated = False
    if plan.truncate_fraction > 0 and out:
        total = sum(len(line) + 1 for line, _ in out)
        target = int(total * plan.truncate_fraction)
        consumed = 0
        for cut_at, (line, _) in enumerate(out):
            if consumed + len(line) + 1 > target:
                break
            consumed += len(line) + 1
        else:
            cut_at = len(out) - 1
        # Keep one byte of the cut line: the partial record ("0", "!")
        # is guaranteed-invalid, so the cut is always *visible* as a
        # fault rather than landing on a clean line boundary.
        head = b"\n".join(line for line, _ in out[:cut_at])
        prefix = (head + b"\n" if head else b"") + out[cut_at][0][:1]
        for _, clean_index in out[cut_at:]:
            if clean_index is not None:
                victims.add(clean_index)
        garbage_lines = sum(1 for _, idx in out[:cut_at] if idx is None)
        return CorruptionResult(prefix, sorted(victims), garbage_lines,
                                truncated=True)
    data = b"\n".join(line for line, _ in out) + (b"\n" if out else b"")
    return CorruptionResult(data, sorted(victims), garbage_lines, truncated)


def corrupt_binary(clean: bytes, plan: InputFaultPlan) -> CorruptionResult:
    """Apply a fault schedule to a finalized RIB1 byte string.

    Scheduled records get their 28 bytes reversed (the wrong-
    endianness fault); if the reversal would happen to land a valid
    marker byte, the marker position is re-damaged so every victim is
    guaranteed-detectable.  Note a flipped payload also stales the
    footer digest — lenient readers will count one trailing
    ``checksum`` fault on top of the per-record ``format`` faults.
    """
    from repro.ingest.binary import (
        FOOTER_SIZE, HEADER_SIZE, MARKER, RECORD_SIZE)
    payload = len(clean) - HEADER_SIZE - FOOTER_SIZE
    count = payload // RECORD_SIZE
    blob = bytearray(clean)
    victims: set[int] = set()
    for index in range(count):
        if plan.roll(index, BYTE_REVERSE) >= plan.flip_rate:
            continue
        start = HEADER_SIZE + index * RECORD_SIZE
        record = blob[start:start + RECORD_SIZE][::-1]
        if record[RECORD_SIZE - 2] == MARKER:
            record[RECORD_SIZE - 2] ^= 0x55
        blob[start:start + RECORD_SIZE] = record
        victims.add(index)
    truncated = False
    if plan.truncate_fraction > 0 and count:
        cut_record = min(int(count * plan.truncate_fraction), count - 1)
        cut = HEADER_SIZE + cut_record * RECORD_SIZE + RECORD_SIZE // 2
        blob = blob[:cut]
        for index in range(cut_record, count):
            victims.add(index)
        truncated = True
    return CorruptionResult(bytes(blob), sorted(victims),
                            truncated=truncated)


def truncate_gzip(compressed: bytes, fraction: float = 0.5) -> bytes:
    """Cut a gzip member mid-stream (a *truncated* ingest fault).

    Keeps at least the 10-byte gzip header so the reader engages the
    decompressor and fails inside it, not at format detection.
    """
    cut = max(10, int(len(compressed) * fraction))
    return compressed[:cut]
