"""JSON (de)serialisation of system configurations.

Lets experiments be pinned to a config file::

    from repro.config_io import load_system, save_system
    save_system(SystemParams(), "table2.json")
    params = load_system("table2.json")

Only plain dataclass fields are stored, so configs are stable across
library versions that keep the same parameter names.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.errors import ConfigurationError
from repro.params import (
    CacheParams,
    CoreParams,
    DramParams,
    SystemParams,
)


def system_to_dict(params: SystemParams) -> dict:
    """Convert a SystemParams tree into plain JSON-ready dicts."""
    return {
        "core": asdict(params.core),
        "l1d": asdict(params.l1d),
        "l2": asdict(params.l2),
        "llc": asdict(params.llc),
        "dram": asdict(params.dram),
        "model_tlb": params.model_tlb,
    }


def system_from_dict(data: dict) -> SystemParams:
    """Rebuild SystemParams from :func:`system_to_dict` output."""
    try:
        return SystemParams(
            core=CoreParams(**data["core"]),
            l1d=CacheParams(**data["l1d"]),
            l2=CacheParams(**data["l2"]),
            llc=CacheParams(**data["llc"]),
            dram=DramParams(**data["dram"]),
            model_tlb=bool(data.get("model_tlb", True)),
        )
    except (KeyError, TypeError) as error:
        raise ConfigurationError(f"malformed system config: {error}") from error


def save_system(params: SystemParams, path: str) -> None:
    """Write a system configuration as JSON."""
    with open(path, "w") as fh:
        json.dump(system_to_dict(params), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_system(path: str) -> SystemParams:
    """Read a system configuration written by :func:`save_system`."""
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path}: invalid JSON: {error}"
            ) from error
    return system_from_dict(data)
