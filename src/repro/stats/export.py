"""CSV export for experiment tables.

The benchmarks emit aligned ASCII for eyeballing; downstream plotting
wants machine-readable rows.  :func:`write_csv` mirrors
:func:`repro.stats.report.format_table`'s inputs so any emitted table
can also be exported.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence

from repro.errors import ConfigurationError


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence]) -> None:
    """Write a header + rows table as CSV (floats at full precision)."""
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def read_csv(path: str) -> tuple[list[str], list[list[str]]]:
    """Read back a table written by :func:`write_csv`."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            headers = next(reader)
        except StopIteration:
            raise ConfigurationError(f"{path}: empty CSV") from None
        return headers, [row for row in reader]
