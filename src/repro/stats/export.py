"""CSV and JSONL export for experiment tables and event streams.

The benchmarks emit aligned ASCII for eyeballing; downstream plotting
wants machine-readable rows.  :func:`write_csv` mirrors
:func:`repro.stats.report.format_table`'s inputs so any emitted table
can also be exported.  :func:`write_jsonl`/:func:`read_jsonl` are the
line-oriented counterpart used by the telemetry layer: one JSON object
per line, so a multi-million-event stream can be written, tailed and
filtered without ever holding the whole document in memory.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence]) -> None:
    """Write a header + rows table as CSV (floats at full precision)."""
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def write_jsonl(path: str, rows: Iterable[dict]) -> None:
    """Write dict rows as JSON-lines (one compact object per line)."""
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True,
                                separators=(",", ":")) + "\n")


def read_jsonl(path: str) -> list[dict]:
    """Read back a JSON-lines file; blank lines are skipped.

    A malformed line raises :class:`ConfigurationError` with its line
    number — a telemetry stream is evidence, so a silently dropped
    record is worse than a loud failure.
    """
    rows: list[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno}: malformed JSONL record: {error}"
                ) from None
    return rows


def read_csv(path: str) -> tuple[list[str], list[list[str]]]:
    """Read back a table written by :func:`write_csv`."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            headers = next(reader)
        except StopIteration:
            raise ConfigurationError(f"{path}: empty CSV") from None
        return headers, [row for row in reader]
