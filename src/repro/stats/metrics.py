"""Prefetching metrics, matching the paper's definitions.

* **speedup** — IPC relative to the no-prefetching baseline (Fig. 7/8);
  suite averages are geometric means of per-trace speedups.
* **coverage** — fraction of baseline demand misses removed by
  prefetching (Fig. 10, Table IV).
* **accuracy** — fraction of filled prefetches that saw a demand hit
  (Table IV).
* **class contribution** — share of the covered misses attributable to
  each IPCP class (Fig. 12).
* **normalized weighted speedup** — multicore metric: the weighted
  speedup of a prefetching configuration divided by the no-prefetching
  configuration's (Section VI's formula).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.core.ipcp_l1 import PfClass
from repro.errors import ConfigurationError
from repro.sim.engine import SimResult
from repro.sim.multicore import MixResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ConfigurationError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(result: SimResult, baseline: SimResult) -> float:
    """IPC speedup of ``result`` over ``baseline`` (same trace)."""
    if result.trace_name != baseline.trace_name:
        raise ConfigurationError(
            f"speedup across different traces: {result.trace_name!r} "
            f"vs {baseline.trace_name!r}"
        )
    return result.speedup_over(baseline)


def coverage_by_level(result: SimResult) -> dict[str, float]:
    """Prefetch coverage at each cache level (Fig. 10 / Table IV rows)."""
    return {
        "l1": result.l1.coverage,
        "l2": result.l2.coverage,
        "llc": result.llc.coverage,
    }


def class_contributions(result: SimResult) -> dict[str, float]:
    """Share of covered L1 misses per IPCP class (Fig. 12).

    Keys are class names (``cs``/``cplx``/``gs``/``nl``); values sum to
    1.0 over the classes that covered anything (empty dict when the run
    had no useful prefetches).
    """
    useful = result.l1.pf_useful_by_class
    total = sum(useful.values())
    if not total:
        return {}
    contributions = {}
    for class_id, count in useful.items():
        try:
            name = PfClass(class_id).name.lower()
        except ValueError:
            name = f"class{class_id}"
        contributions[name] = count / total
    return contributions


def normalized_weighted_speedup(
    prefetching: MixResult, baseline: MixResult
) -> float:
    """Weighted speedup of a config normalised to no prefetching."""
    base = baseline.weighted_speedup
    if base == 0:
        raise ConfigurationError("baseline weighted speedup is zero")
    return prefetching.weighted_speedup / base


def dram_traffic_overhead(result: SimResult, baseline: SimResult) -> float:
    """Extra DRAM traffic caused by prefetching (the paper's 16.1%).

    With a traffic-free baseline the ratio is undefined: zero extra
    traffic over zero is no overhead (0.0), but any traffic at all over
    zero is unboundedly worse, reported as ``inf`` rather than silently
    folded into "no overhead".
    """
    if baseline.dram_bytes == 0:
        return 0.0 if result.dram_bytes == 0 else float("inf")
    return result.dram_bytes / baseline.dram_bytes - 1.0
