"""Plain-text table formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; this module renders them as aligned ASCII so the regenerated
artifacts are easy to eyeball against the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.resilience import JobFailure


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, JobFailure):
        # Degraded-mode grids carry terminal failures as cells; render
        # them explicitly rather than aborting the whole table.
        return f"FAILED({value.error_type})"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table (floats to 3 decimals)."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered)) if rendered
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
