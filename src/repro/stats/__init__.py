"""Metrics and reporting helpers shared by benchmarks and examples."""

from repro.stats.metrics import (
    class_contributions,
    coverage_by_level,
    geometric_mean,
    normalized_weighted_speedup,
    speedup,
)
from repro.stats.report import format_table
from repro.stats.timeline import TimelineRecorder, Window, phase_shift_windows

__all__ = [
    "class_contributions",
    "coverage_by_level",
    "format_table",
    "geometric_mean",
    "normalized_weighted_speedup",
    "phase_shift_windows",
    "speedup",
    "TimelineRecorder",
    "Window",
]
