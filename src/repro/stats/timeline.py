"""Windowed (phase) metrics over a simulation.

Long programs move through phases — mcf alternates regular and
irregular regions, which is exactly why the paper splits it into
sim-point traces (1152B regular, 1536B irregular).  A
:class:`TimelineRecorder` snapshots the hierarchy every N retired
instructions and derives per-window IPC, demand MPKI, prefetch issue
rate, coverage and — because the interesting signal is usually *which*
classifier switched on — per-IPCP-class issue/useful counts: the data
needed to see an IPCP class switching on as a phase begins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsys.hierarchy import Hierarchy
from repro.sim.cpu import Cpu

# Below this demand MPKI a window is effectively idle: its misses are
# measurement noise, not program behaviour, so two near-idle windows
# must never register as a phase shift no matter what their ratio is.
IDLE_MPKI = 0.1


@dataclass(frozen=True)
class Window:
    """Metrics for one instruction window.

    ``pf_issued_by_class``/``pf_useful_by_class`` are the window-local
    deltas of the L1's per-class prefetch counters, frozen as sorted
    ``(class, count)`` tuples (classes with a zero delta are omitted);
    use :attr:`issued_by_class`/:attr:`useful_by_class` for dict views.
    """

    start_instruction: int
    instructions: int
    cycles: int
    l1_demand_misses: int
    pf_issued: int
    pf_useful: int
    pf_issued_by_class: tuple[tuple[int, int], ...] = ()
    pf_useful_by_class: tuple[tuple[int, int], ...] = ()

    @property
    def empty(self) -> bool:
        """True when the window retired no instructions."""
        return self.instructions == 0

    @property
    def ipc(self) -> float:
        """Window-local instructions per cycle.

        A zero-cycle window has no timing signal, so the result is
        ``nan`` — *unknown*, not the 0.0 that timeline reports would
        render as a fully stalled core.
        """
        return self.instructions / self.cycles if self.cycles else math.nan

    @property
    def l1_mpki(self) -> float:
        """Window-local L1 demand MPKI (``nan`` for an empty window)."""
        if not self.instructions:
            return math.nan
        return self.l1_demand_misses * 1000.0 / self.instructions

    @property
    def issued_by_class(self) -> dict[int, int]:
        """Window-local prefetches issued, keyed by IPCP class id."""
        return dict(self.pf_issued_by_class)

    @property
    def useful_by_class(self) -> dict[int, int]:
        """Window-local useful prefetches, keyed by IPCP class id."""
        return dict(self.pf_useful_by_class)


class TimelineRecorder:
    """Snapshots a (cpu, hierarchy) pair into per-window metrics."""

    def __init__(self, cpu: Cpu, hierarchy: Hierarchy,
                 interval: int = 5_000) -> None:
        if interval < 1:
            raise ConfigurationError("snapshot interval must be >= 1")
        self.cpu = cpu
        self.hierarchy = hierarchy
        self.interval = interval
        self.windows: list[Window] = []
        self._mark()

    def _mark(self) -> None:
        stats = self.hierarchy.l1d.stats
        self._last = (
            self.cpu.retired,
            self.cpu.cycle,
            stats.demand_misses,
            stats.pf_issued,
            stats.pf_useful,
            dict(stats.pf_issued_by_class),
            dict(stats.pf_useful_by_class),
        )

    def run(self, records) -> list[Window]:
        """Run the trace, snapshotting every ``interval`` instructions."""
        iterator = iter(records)
        while True:
            result = self.cpu.run(iterator, max_instructions=self.interval)
            if result.instructions == 0:
                break
            self._snapshot()
            if result.instructions < self.interval:
                break
        return self.windows

    def _snapshot(self) -> None:
        stats = self.hierarchy.l1d.stats
        (retired, cycle, misses, issued, useful,
         issued_by_class, useful_by_class) = self._last
        self.windows.append(Window(
            start_instruction=retired,
            instructions=self.cpu.retired - retired,
            cycles=self.cpu.cycle - cycle,
            l1_demand_misses=stats.demand_misses - misses,
            pf_issued=stats.pf_issued - issued,
            pf_useful=stats.pf_useful - useful,
            pf_issued_by_class=_class_delta(
                stats.pf_issued_by_class, issued_by_class
            ),
            pf_useful_by_class=_class_delta(
                stats.pf_useful_by_class, useful_by_class
            ),
        ))
        self._mark()


def _class_delta(current: dict[int, int], previous: dict[int, int]
                 ) -> tuple[tuple[int, int], ...]:
    """Window-local per-class counter delta as a sorted, sparse tuple."""
    return tuple(sorted(
        (cls, count - previous.get(cls, 0))
        for cls, count in current.items()
        if count - previous.get(cls, 0)
    ))


def phase_shift_windows(windows: list[Window], factor: float = 2.0,
                        min_mpki: float = IDLE_MPKI) -> list[int]:
    """Indexes where the window MPKI jumps by more than ``factor``x.

    A cheap phase-change detector: window *i* is flagged when its MPKI
    differs from the previous measurable window's by the given
    multiplicative factor (in either direction).

    Two guards keep the detector honest at the quiet end:

    * both MPKIs are clamped up to ``min_mpki`` before the ratio test,
      so two effectively idle windows (say 0.0 and 0.001 misses per
      kilo-instruction) compare equal instead of registering a
      thousand-fold "shift" between two flavours of nothing — pass
      ``min_mpki=0`` to recover the raw ratio behaviour;
    * empty windows (zero instructions — their MPKI is ``nan``) carry
      no signal at all: they are never flagged and never serve as the
      comparison baseline for the next window.
    """
    if factor <= 1.0:
        raise ConfigurationError("factor must exceed 1.0")
    if min_mpki < 0.0:
        raise ConfigurationError("min_mpki must be >= 0")
    floor = max(min_mpki, 1e-6)
    shifts = []
    prev_mpki: float | None = None
    for i, window in enumerate(windows):
        if window.empty:
            continue
        mpki = window.l1_mpki
        if prev_mpki is not None:
            prev = max(prev_mpki, floor)
            cur = max(mpki, floor)
            if cur / prev >= factor or prev / cur >= factor:
                shifts.append(i)
        prev_mpki = mpki
    return shifts
