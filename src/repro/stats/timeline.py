"""Windowed (phase) metrics over a simulation.

Long programs move through phases — mcf alternates regular and
irregular regions, which is exactly why the paper splits it into
sim-point traces (1152B regular, 1536B irregular).  A
:class:`TimelineRecorder` snapshots the hierarchy every N retired
instructions and derives per-window IPC, demand MPKI, prefetch issue
rate and coverage — the data needed to see an IPCP class switching on
as a phase begins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsys.hierarchy import Hierarchy
from repro.sim.cpu import Cpu


@dataclass(frozen=True)
class Window:
    """Metrics for one instruction window."""

    start_instruction: int
    instructions: int
    cycles: int
    l1_demand_misses: int
    pf_issued: int
    pf_useful: int

    @property
    def ipc(self) -> float:
        """Window-local instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_mpki(self) -> float:
        """Window-local L1 demand MPKI."""
        if not self.instructions:
            return 0.0
        return self.l1_demand_misses * 1000.0 / self.instructions


class TimelineRecorder:
    """Snapshots a (cpu, hierarchy) pair into per-window metrics."""

    def __init__(self, cpu: Cpu, hierarchy: Hierarchy,
                 interval: int = 5_000) -> None:
        if interval < 1:
            raise ConfigurationError("snapshot interval must be >= 1")
        self.cpu = cpu
        self.hierarchy = hierarchy
        self.interval = interval
        self.windows: list[Window] = []
        self._mark()

    def _mark(self) -> None:
        stats = self.hierarchy.l1d.stats
        self._last = (
            self.cpu.retired,
            self.cpu.cycle,
            stats.demand_misses,
            stats.pf_issued,
            stats.pf_useful,
        )

    def run(self, records) -> list[Window]:
        """Run the trace, snapshotting every ``interval`` instructions."""
        iterator = iter(records)
        while True:
            result = self.cpu.run(iterator, max_instructions=self.interval)
            if result.instructions == 0:
                break
            self._snapshot()
            if result.instructions < self.interval:
                break
        return self.windows

    def _snapshot(self) -> None:
        stats = self.hierarchy.l1d.stats
        retired, cycle, misses, issued, useful = self._last
        self.windows.append(Window(
            start_instruction=retired,
            instructions=self.cpu.retired - retired,
            cycles=self.cpu.cycle - cycle,
            l1_demand_misses=stats.demand_misses - misses,
            pf_issued=stats.pf_issued - issued,
            pf_useful=stats.pf_useful - useful,
        ))
        self._mark()


def phase_shift_windows(windows: list[Window], factor: float = 2.0
                        ) -> list[int]:
    """Indexes where the window MPKI jumps by more than ``factor``x.

    A cheap phase-change detector: window *i* is flagged when its MPKI
    differs from window *i-1* by the given multiplicative factor (in
    either direction).
    """
    if factor <= 1.0:
        raise ConfigurationError("factor must exceed 1.0")
    shifts = []
    for i in range(1, len(windows)):
        prev = max(windows[i - 1].l1_mpki, 1e-6)
        cur = max(windows[i].l1_mpki, 1e-6)
        if cur / prev >= factor or prev / cur >= factor:
            shifts.append(i)
    return shifts
