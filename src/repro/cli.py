"""Command-line interface: run paper experiments from the shell.

Examples::

    python -m repro list-prefetchers
    python -m repro list-workloads
    python -m repro run --workload lbm_like --prefetcher ipcp
    python -m repro compare --workloads lbm_like,bwaves_like \\
                            --prefetchers ipcp,mlop,bingo --jobs 4
    python -m repro sweep --axis dram-bandwidth --values 3.2,12.8,25.0 \\
                          --workloads lbm_like,bwaves_like
    python -m repro analyze --workload mcf_i_like
    python -m repro mix --workload lbm_like --cores 4 --prefetcher ipcp
    python -m repro trace --workload bwaves_like --out events.jsonl
    python -m repro profile --workload mcf_i_like --top 15
    python -m repro serve --port 8642 --workers 2 --queue-bound 64
    python -m repro submit --workload lbm_like --prefetcher ipcp --wait

Simulation commands accept ``--jobs N`` to fan cells out across worker
processes and keep a persistent result cache (``--cache-dir``, default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sim``; disable with
``--no-cache``), so repeating a figure or sweep is a cache hit.

Execution is fault-tolerant (docs/resilience.md): ``--retries N``
bounds the attempt budget for transient failures, ``--timeout SEC``
kills and retries overdue jobs, ``--journal PATH`` checkpoints resolved
cells so an interrupted run (Ctrl-C exits 130 after flushing the
journal) resumes with zero recomputation, and ``--degraded`` renders
``FAILED(reason)`` cells instead of aborting.  ``repro chaos`` runs the
seeded fault-injection proof.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import ExperimentRunner, run_levels, run_sweep
from repro.analysis.tracestats import analyze_trace
from repro.analysis.validate import check_prefetcher
from repro.errors import (
    ConfigurationError,
    JobError,
    ReproError,
    exit_code_for,
)
from repro.prefetchers import available_prefetchers, make_prefetcher
from repro.resilience import (
    CheckpointJournal,
    RetryPolicy,
    flush_active_journals,
)
from repro.runner import ResultCache, SimulationRunner
from repro.runner.job import levels_job
from repro.service import JobService, ServiceClient
from repro.service.server import serve as serve_service
from repro.service.wire import spec_to_wire
from repro.sim.batched import ENGINES
from repro.sim.multicore import simulate_mix
from repro.sim.trace import load_trace, save_trace
from repro.stats import format_table, normalized_weighted_speedup
from repro.workloads import homogeneous_mix, spec_trace
from repro.workloads.cloudsuite import CLOUDSUITE_BENCHMARKS, cloudsuite_trace
from repro.workloads.frontend import FRONTEND_BENCHMARKS, frontend_trace
from repro.workloads.gap import GAP_BENCHMARKS, gap_trace
from repro.workloads.neural import NEURAL_BENCHMARKS, neural_trace
from repro.workloads.spec import (
    EXTENSION_BENCHMARKS,
    SPEC_BENCHMARKS,
    extension_trace,
)
from repro.workloads.stream import STREAM_BENCHMARKS, stream_trace


def build_trace(name: str, scale: float):
    """Resolve a workload name across the SPEC/cloud/neural suites."""
    if name in SPEC_BENCHMARKS:
        return spec_trace(name, scale)
    if name in GAP_BENCHMARKS:
        return gap_trace(name, scale)
    if name in STREAM_BENCHMARKS:
        return stream_trace(name, scale)
    if name in CLOUDSUITE_BENCHMARKS:
        return cloudsuite_trace(name, scale)
    if name in NEURAL_BENCHMARKS:
        return neural_trace(name, scale)
    if name in EXTENSION_BENCHMARKS:
        return extension_trace(name, scale)
    if name in FRONTEND_BENCHMARKS:
        return frontend_trace(name, scale)
    raise ReproError(
        f"unknown workload {name!r}; see `python -m repro list-workloads`"
    )


def cmd_list_prefetchers(args) -> int:
    """List every registered prefetcher configuration."""
    rows = []
    for name in available_prefetchers():
        levels = make_prefetcher(name)
        built = {level: factory() for level, factory in levels.items()}
        layout = ", ".join(
            f"{pf.name}@{level.upper()}" for level, pf in built.items()
        ) or "(no prefetching)"
        bits = sum(pf.storage_bits for pf in built.values())
        rows.append([name, layout, f"{bits / 8 / 1024:.2f} KB"])
    print(format_table(["name", "levels", "storage"], rows))
    return 0


def cmd_list_workloads(args) -> int:
    """List workload names across all synthetic suites."""
    rows = []
    for name, (_, intensive, _) in SPEC_BENCHMARKS.items():
        rows.append([name, "spec", "yes" if intensive else "no"])
    for name, (_, intensive, _) in GAP_BENCHMARKS.items():
        rows.append([name, "gap", "yes" if intensive else "no"])
    for name, (_, intensive, _) in STREAM_BENCHMARKS.items():
        rows.append([name, "stream", "yes" if intensive else "no"])
    for name in CLOUDSUITE_BENCHMARKS:
        rows.append([name, "cloudsuite", "-"])
    for name in NEURAL_BENCHMARKS:
        rows.append([name, "neural", "-"])
    for name in EXTENSION_BENCHMARKS:
        rows.append([name, "extension", "-"])
    for name in FRONTEND_BENCHMARKS:
        rows.append([name, "frontend", "-"])
    print(format_table(["workload", "suite", "memory-intensive"], rows))
    return 0


def make_backend(args) -> SimulationRunner:
    """Build the job runner from the shared runner/resilience options."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    journal = (CheckpointJournal(args.journal)
               if getattr(args, "journal", None) else None)
    return SimulationRunner(
        jobs=args.jobs,
        cache=cache,
        retry=RetryPolicy(max_attempts=args.retries),
        timeout=args.timeout,
        journal=journal,
        degraded=getattr(args, "degraded", False),
    )


def parse_size(text: str) -> int:
    """Parse a byte size with an optional k/m suffix ('512k', '2m')."""
    text = text.strip().lower()
    multiplier = 1
    if text.endswith(("k", "m")):
        multiplier = 1024 if text.endswith("k") else 1024 * 1024
        text = text[:-1]
    try:
        return int(text) * multiplier
    except ValueError:
        raise ReproError(f"bad size {text!r}; expected e.g. 32768, 32k, 2m")


def cmd_run(args) -> int:
    """Run one workload with and without a prefetcher."""
    trace = build_trace(args.workload, args.scale)
    runner = ExperimentRunner([trace], runner=make_backend(args),
                              engine=args.engine)
    runner.ensure([(trace.name, "none"), (trace.name, args.prefetcher)])
    baseline = runner.result(trace.name, "none")
    result = runner.result(trace.name, args.prefetcher)
    rows = [
        ["IPC", baseline.ipc, result.ipc],
        ["speedup", 1.0, result.speedup_over(baseline)],
        ["L1 demand MPKI", baseline.mpki("l1"), result.mpki("l1")],
        ["LLC demand MPKI", baseline.mpki("llc"), result.mpki("llc")],
        ["L1 coverage", "-", result.l1.coverage],
        ["L1 accuracy", "-", result.l1.accuracy],
        ["DRAM reads", baseline.dram_reads, result.dram_reads],
    ]
    print(format_table(
        ["metric", "no prefetching", args.prefetcher], rows,
        title=f"{trace.name} ({len(trace)} instructions)",
    ))
    return 0


def cmd_frontend(args) -> int:
    """Compare instruction prefetchers over the frontend-bound suite."""
    from repro.frontend import (
        get_frontend_run_info,
        make_frontend_prefetcher,
        simulate_frontend,
    )

    names = (list(FRONTEND_BENCHMARKS) if args.workloads == "all"
             else args.workloads.split(","))
    configs = [c for c in args.prefetchers.split(",") if c != "none"]
    rows = []
    for name in names:
        trace = frontend_trace(name, args.scale)
        baseline = simulate_frontend(trace, engine=args.engine)
        rows.append([name, "none", 1.0, baseline.l1i_mpki, "-",
                     baseline.walks_pki])
        for config in configs:
            result = simulate_frontend(
                trace, make_frontend_prefetcher(config),
                engine=args.engine)
            rows.append([name, config, result.speedup_over(baseline),
                         result.l1i_mpki, result.coverage_over(baseline),
                         result.walks_pki])
    print(format_table(
        ["workload", "prefetcher", "speedup", "L1-I MPKI", "coverage",
         "walks/ki"], rows))
    info = get_frontend_run_info()
    if info.get("support_reason"):
        print(f"engine: {info['engine']} ({info['support_reason']})")
    return 0


def cmd_compare(args) -> int:
    """Render a (trace x config) speedup table."""
    traces = [build_trace(name, args.scale)
              for name in args.workloads.split(",")]
    configs = args.prefetchers.split(",")
    runner = ExperimentRunner(traces, runner=make_backend(args),
                              engine=args.engine)
    rows = runner.speedup_table(configs)
    print(format_table(["trace"] + configs, rows,
                       title="Speedup over no prefetching"))
    return 0


_SWEEP_AXES = ("dram-bandwidth", "l1-size", "l2-size", "llc-size",
               "replacement")


def cmd_sweep(args) -> int:
    """Sweep one system axis and tabulate geomean speedups."""
    from repro.analysis.sweep import sweep_system

    traces = [build_trace(name, args.scale)
              for name in args.workloads.split(",")]
    configs = args.prefetchers.split(",")
    values = args.values.split(",")
    params_list = []
    for value in values:
        if args.axis == "dram-bandwidth":
            params_list.append(sweep_system(dram_bandwidth_gbps=float(value)))
        elif args.axis == "l1-size":
            params_list.append(sweep_system(l1_size=parse_size(value)))
        elif args.axis == "l2-size":
            params_list.append(sweep_system(l2_size=parse_size(value)))
        elif args.axis == "llc-size":
            params_list.append(sweep_system(llc_size=parse_size(value)))
        else:
            params_list.append(sweep_system(replacement=value))
    rows_by_point = run_sweep(
        traces, configs, params_list, runner=make_backend(args)
    )
    rows = [[value] + [point[config] for config in configs]
            for value, point in zip(values, rows_by_point)]
    print(format_table(
        [args.axis] + configs, rows,
        title=f"Geomean speedup over no prefetching, swept {args.axis}",
    ))
    return 0


def cmd_analyze(args) -> int:
    """Print a Section III access-pattern profile for a trace."""
    trace = build_trace(args.workload, args.scale)
    profile = analyze_trace(trace)
    shares = profile.class_shares()
    rows = [[label, share] for label, share in shares.items()]
    rows.append(["dense 2KB regions", profile.dense_region_fraction])
    rows.append(["distinct IPs", profile.distinct_ips])
    rows.append(["loads analyzed", profile.loads])
    print(format_table(
        ["property", "value"], rows,
        title=f"Section III pattern profile: {trace.name}",
    ))
    return 0


def cmd_dump_trace(args) -> int:
    """Generate a workload and write it as a trace file."""
    trace = build_trace(args.workload, args.scale)
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} records ({trace.load_records} loads) "
          f"to {args.out}")
    return 0


def cmd_run_trace(args) -> int:
    """Simulate a previously dumped trace file."""
    trace = load_trace(args.trace_file)
    baseline = run_levels(trace, "none")
    result = run_levels(trace, args.prefetcher)
    rows = [
        ["IPC", baseline.ipc, result.ipc],
        ["speedup", 1.0, result.speedup_over(baseline)],
        ["L1 coverage", "-", result.l1.coverage],
    ]
    print(format_table(
        ["metric", "no prefetching", args.prefetcher], rows,
        title=f"{args.trace_file} ({len(trace)} instructions)",
    ))
    return 0


def cmd_validate(args) -> int:
    """Audit a prefetcher config against the request contract."""
    levels = make_prefetcher(args.prefetcher)
    trace = build_trace(args.workload, args.scale)
    exit_code = 0
    for level, factory in levels.items():
        report = check_prefetcher(
            factory(), trace, allow_cross_page=args.allow_cross_page
        )
        status = "OK" if report.ok else "VIOLATIONS"
        print(f"{args.prefetcher}@{level.upper()}: {status} — "
              f"{report.accesses} accesses, {report.requests} requests")
        for kind, count in sorted(report.by_kind().items()):
            print(f"  {kind}: {count}")
            exit_code = 1
    return exit_code


def cmd_report(args) -> int:
    """Render a multi-metric report for one workload grid."""
    import os

    from repro.analysis.figures import ALL_FIGURES
    from repro.workloads import memory_intensive_suite

    from repro.stats.export import write_csv

    os.makedirs(args.out, exist_ok=True)
    runner = ExperimentRunner(
        memory_intensive_suite(scale=args.scale), runner=make_backend(args)
    )
    for name, figure in ALL_FIGURES.items():
        title, headers, rows = figure(runner)
        text = format_table(headers, rows, title=title)
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        write_csv(os.path.join(args.out, f"{name}.csv"), headers, rows)
        print(f"wrote {path} (+ .csv)")
    return 0


def cmd_verify(args) -> int:
    """Run the differential verification suite (docs/verification.md)."""
    from repro.verify.golden import (
        DEFAULT_BASELINE_PATH,
        GOLDEN_SCALE,
        GOLDEN_WORKLOADS,
        collect_golden_stats,
        compare_to_baseline,
        load_baseline,
        save_baseline,
    )
    from repro.verify.invariants import run_invariant_sweep
    from repro.verify.lockstep import run_lockstep_suite
    from repro.workloads import full_suite

    failed = False

    if not args.skip_oracle:
        print("== oracle lockstep diff (production IpcpL1 vs naive models) ==")
        reports = run_lockstep_suite()
        for report in reports:
            if not report.ok:
                failed = True
                print(report.describe())
        matched = sum(r.requests for r in reports)
        accesses = sum(r.accesses for r in reports)
        if all(r.ok for r in reports):
            print(f"OK — {len(reports)} lockstep cells, {accesses} accesses, "
                  f"{matched} matching prefetches")

    if not args.skip_invariants:
        print("== runtime invariants (all prefetchers x full suite) ==")
        reports = run_invariant_sweep(full_suite(scale=args.invariant_scale))
        bad = [r for r in reports if not r.ok]
        for report in bad[:10]:
            failed = True
            print(report.describe())
        if not bad:
            accesses = sum(r.accesses for r in reports)
            requests = sum(r.requests for r in reports)
            print(f"OK — {len(reports)} (prefetcher, trace) cells, "
                  f"{accesses} accesses, {requests} requests audited")

        print("== frontend invariants (instruction prefetchers x "
              "frontend suite) ==")
        from repro.verify.invariants import run_frontend_invariant_sweep
        from repro.workloads import frontend_suite

        fe_scale = max(args.invariant_scale, 0.2)
        fe_reports = run_frontend_invariant_sweep(
            frontend_suite(scale=fe_scale)
        )
        fe_bad = [r for r in fe_reports if not r.ok]
        for report in fe_bad[:10]:
            failed = True
            print(report.describe())
        if not fe_bad:
            accesses = sum(r.accesses for r in fe_reports)
            requests = sum(r.requests for r in fe_reports)
            print(f"OK — {len(fe_reports)} (prefetcher, trace) cells, "
                  f"{accesses} fetch transitions, {requests} requests "
                  "audited")

    if not args.skip_golden:
        print("== golden-stats regression ==")
        runner = make_backend(args)
        if args.update_baseline:
            workloads = tuple(
                args.workloads.split(",") if args.workloads
                else GOLDEN_WORKLOADS
            )
            prefetchers = (
                args.prefetchers.split(",") if args.prefetchers else None
            )
            scale = args.scale if args.scale is not None else GOLDEN_SCALE
            document = collect_golden_stats(
                workloads=workloads, prefetchers=prefetchers,
                scale=scale, runner=runner,
            )
            save_baseline(document, args.baseline)
            print(f"wrote {len(document['cells'])} cells to {args.baseline}")
        else:
            baseline = load_baseline(args.baseline)
            current = collect_golden_stats(
                workloads=tuple(baseline["workloads"]),
                prefetchers=list(baseline["prefetchers"]),
                scale=baseline["scale"],
                runner=runner,
            )
            drifts = compare_to_baseline(
                current, baseline, rel_tol=args.tolerance
            )
            for drift in drifts[:20]:
                failed = True
                print(drift.describe())
            if drifts and len(drifts) > 20:
                print(f"... and {len(drifts) - 20} more drifting metrics")
            if not drifts:
                print(f"OK — {len(current['cells'])} cells match "
                      f"{args.baseline}")
            else:
                print("drift detected; if intentional, re-baseline with "
                      "`python -m repro verify --update-baseline`")

    if not args.skip_cross_engine:
        print("== cross-engine equivalence (scalar vs batched) ==")
        from repro.verify.cross_engine import run_cross_engine

        workloads = tuple(
            args.workloads.split(",") if args.workloads else GOLDEN_WORKLOADS
        )
        prefetchers = (
            args.prefetchers.split(",") if args.prefetchers else None
        )
        scale = args.scale if args.scale is not None else GOLDEN_SCALE
        report = run_cross_engine(
            workloads=workloads, prefetchers=prefetchers, scale=scale,
        )
        print(report.describe())
        if not report.ok:
            failed = True
        elif not report.fused_cells:
            failed = True
            print("FAIL — no cell exercised the fused batched path; "
                  "the fast engine has silently rotted into fallback")

    return 1 if failed else 0


def cmd_mix(args) -> int:
    """Homogeneous mixes, or the graded-suite artifact pipeline.

    Without an action this simulates a homogeneous multicore mix and
    prints its weighted speedup.  With ``run``/``summarize``/``plot``
    it drives the Kill-Llama-style experiment-artifact pipeline over
    the graded ``mix1``-``mix7`` suite, regenerating
    ``benchmarks/out/mix/<mix>/{results.jsonl,summary.json,plot.txt}``
    deterministically (bit-identical on a warm cached rerun).
    """
    if args.action is not None:
        return _mix_pipeline(args)
    if args.workload is None:
        raise ConfigurationError(
            "mix needs --workload (homogeneous mode) or an action: "
            "run / summarize / plot")
    if args.scale is None:
        args.scale = 0.25
    traces = homogeneous_mix(args.workload, args.cores, scale=args.scale)
    levels = make_prefetcher(args.prefetcher)
    backend = make_backend(args)
    alone: dict[str, float] = {}
    base = simulate_mix(traces, alone_ipc=alone, runner=backend,
                        engine=args.engine)
    result = simulate_mix(
        traces,
        l1_factory=levels.get("l1"),
        l2_factory=levels.get("l2"),
        llc_factory=levels.get("llc"),
        alone_ipc=alone,
        runner=backend,
        engine=args.engine,
    )
    rows = [
        ["weighted speedup (baseline)", base.weighted_speedup],
        [f"weighted speedup ({args.prefetcher})", result.weighted_speedup],
        ["normalized", normalized_weighted_speedup(result, base)],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.cores}-core homogeneous mix of {args.workload}",
    ))
    if result.engine_reason:
        print(f"engine: requested {args.engine!r}, ran "
              f"{result.engine!r} — {result.engine_reason}")
    if result.degenerate_cores:
        print(f"warning: degenerate core(s) {result.degenerate_cores} "
              f"contributed 0.0 to the weighted speedup")
    return 0


def _mix_selection(selector: str | None) -> list[str]:
    """Resolve ``--mix`` to graded-mix names (default: the whole suite)."""
    from repro.workloads.mixes import GRADED_MIXES

    if selector is None or selector == "all":
        return list(GRADED_MIXES)
    if selector in GRADED_MIXES:
        return [selector]
    raise ConfigurationError(
        f"unknown graded mix {selector!r}; "
        f"known: {', '.join(GRADED_MIXES)} (or 'all')")


def _mix_pipeline(args) -> int:
    """The graded-suite ``run`` / ``summarize`` / ``plot`` actions."""
    import pathlib

    from repro.runner import levels_job, mix_job
    from repro.workloads.mixes import GRADED_MIXES, graded_mix

    mixes = _mix_selection(args.mix)
    configs = [c.strip() for c in args.configs.split(",")
               if c.strip() and c.strip() != "none"]
    out_root = pathlib.Path(args.out)
    if args.scale is None:
        args.scale = 0.2

    if args.action == "run":
        backend = make_backend(args)
        for mix in mixes:
            traces = graded_mix(mix, args.scale)
            mpki_results = backend.run(
                [levels_job(trace, "none") for trace in traces])
            per_core_mpki = [result.mpki("l1") for result in mpki_results]
            specs = [mix_job(traces, config, warmup=args.warmup,
                             roi=args.roi, engine=args.engine)
                     for config in ["none", *configs]]
            base, *results = backend.run(specs)
            lines = [{
                "kind": "baseline_mpki",
                "mix": mix,
                "benchmarks": list(GRADED_MIXES[mix]),
                "per_core_l1_mpki": per_core_mpki,
                "mean_l1_mpki": sum(per_core_mpki) / len(per_core_mpki),
            }]
            for config, result in zip(["none", *configs], [base, *results]):
                lines.append({
                    "kind": "config",
                    "mix": mix,
                    "config": config,
                    "weighted_speedup": result.weighted_speedup,
                    "nws": normalized_weighted_speedup(result, base),
                    "ipc_together": result.ipc_together,
                    "ipc_alone": result.ipc_alone,
                    "dram_reads": result.dram_reads,
                    "dram_writes": result.dram_writes,
                    "engine": result.engine,
                    "engine_reason": result.engine_reason,
                    "degenerate_cores": list(result.degenerate_cores),
                })
            out_dir = out_root / mix
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / "results.jsonl"
            path.write_text(
                "".join(json.dumps(line, sort_keys=True) + "\n"
                        for line in lines),
                encoding="utf-8")
            print(f"wrote {path}")
            if base.engine_reason:
                print(f"engine: requested {args.engine!r}, ran "
                      f"{base.engine!r} — {base.engine_reason}")
        return 0

    if args.action == "summarize":
        for mix in mixes:
            results_path = out_root / mix / "results.jsonl"
            if not results_path.exists():
                raise ConfigurationError(
                    f"{results_path} is missing; run "
                    f"`repro mix run --mix {mix}` first")
            records = [json.loads(line)
                       for line in results_path.read_text(
                           encoding="utf-8").splitlines() if line]
            baseline = next(r for r in records
                            if r["kind"] == "baseline_mpki")
            nws = {r["config"]: r["nws"] for r in records
                   if r["kind"] == "config" and r["config"] != "none"}
            leader = max(sorted(nws), key=lambda config: nws[config])
            summary = {
                "mix": baseline["mix"],
                "benchmarks": baseline["benchmarks"],
                "mean_l1_mpki": baseline["mean_l1_mpki"],
                "per_core_l1_mpki": baseline["per_core_l1_mpki"],
                "nws": nws,
                "leader": leader,
            }
            path = out_root / mix / "summary.json"
            path.write_text(
                json.dumps(summary, sort_keys=True, indent=2) + "\n",
                encoding="utf-8")
            print(f"wrote {path}")
        return 0

    # plot: ASCII bars of normalized weighted speedup per config.
    for mix in mixes:
        summary_path = out_root / mix / "summary.json"
        if not summary_path.exists():
            raise ConfigurationError(
                f"{summary_path} is missing; run "
                f"`repro mix summarize --mix {mix}` first")
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
        width = 48
        lines = [
            f"{summary['mix']}: {'+'.join(summary['benchmarks'])}",
            f"baseline L1 MPKI (single-core mean): "
            f"{summary['mean_l1_mpki']:.2f}",
            "",
        ]
        for config in sorted(summary["nws"]):
            value = summary["nws"][config]
            bar = "#" * max(0, min(width, round(value * 32)))
            marker = " <- leader" if config == summary["leader"] else ""
            lines.append(f"{config:18s} |{bar} {value:.4f}{marker}")
        path = out_root / mix / "plot.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {path}")
    return 0


def _class_label(class_id: int) -> str:
    from repro.core.ipcp_l1 import PfClass

    try:
        return PfClass(class_id).name.lower()
    except ValueError:
        return f"class{class_id}"


def _print_stream_summary(summary, source: str) -> None:
    rows = [[kind, count] for kind, count in summary.kinds]
    print(format_table(["event kind", "count"], rows,
                       title=f"{source}: {summary.total} events"))
    per_class = [
        [level, _class_label(cls), count, "issue"]
        for level, cls, count in summary.issued_by_class
    ] + [
        [level, _class_label(cls), count, "useful"]
        for level, cls, count in summary.useful_by_class
    ]
    if per_class:
        print(format_table(["level", "class", "count", "kind"], per_class,
                           title="Per-class prefetch events"))
    if summary.drops_by_reason:
        rows = [[reason, count]
                for reason, count in summary.drops_by_reason]
        print(format_table(["drop reason", "count"], rows,
                           title="Dropped candidates"))
    if summary.meta_by_class:
        rows = [[name, count] for name, count in summary.meta_by_class]
        print(format_table(["metadata class", "count"], rows,
                           title="L1->L2 metadata packets decoded"))


def _write_events(path: str, events) -> None:
    from repro.telemetry.export import write_events_csv, write_events_jsonl

    if path.endswith(".csv"):
        write_events_csv(path, events)
    else:
        write_events_jsonl(path, events)
    print(f"wrote {len(events)} events to {path}")


def cmd_trace(args) -> int:
    """Record the decision-level event stream for one run."""
    from repro.runner import trace_job
    from repro.telemetry import reconcile, summarize
    from repro.telemetry.export import read_events_jsonl

    from repro.telemetry.export import events_digest

    if args.replay:
        events = read_events_jsonl(args.replay)
        _print_stream_summary(summarize(events), args.replay)
        print(f"events digest: {events_digest(events)}")
        if args.out:
            _write_events(args.out, events)
        return 0

    if not args.workload:
        raise ReproError("trace needs --workload (or --replay FILE)")
    trace = build_trace(args.workload, args.scale)
    spec = trace_job(trace, args.prefetcher, engine=args.engine)
    traced = make_backend(args).run([spec])[0]
    events = list(traced.events)
    _print_stream_summary(summarize(events),
                          f"{trace.name}/{args.prefetcher}")
    print(f"events digest: {events_digest(events)}")
    if args.out:
        _write_events(args.out, events)
    mismatches = reconcile(events, traced.result)
    for mismatch in mismatches:
        print(f"RECONCILE MISMATCH: {mismatch}")
    if mismatches:
        return 1
    print("reconcile OK: per-class issue/useful events match the "
          "hierarchy's counters exactly")
    return 0


def cmd_profile(args) -> int:
    """cProfile the simulator hot loop per phase."""
    from repro.runner.job import levels_job
    from repro.telemetry.profiling import profile_job

    trace = build_trace(args.workload, args.scale)
    spec = levels_job(trace, args.prefetcher)
    for profile in profile_job(spec, top=args.top):
        rate = (profile.instructions / profile.wall_seconds
                if profile.wall_seconds else 0.0)
        print(format_table(
            ["function", "calls", "tottime (s)", "cumtime (s)"],
            profile.rows(),
            title=(f"{trace.name}/{args.prefetcher} {profile.phase}: "
                   f"{profile.instructions} instructions, "
                   f"{profile.cycles} cycles, "
                   f"{profile.wall_seconds:.3f}s ({rate:,.0f} instr/s)"),
        ))
    return 0


def cmd_chaos(args) -> int:
    """Chaos proof: a faulty sweep must match a fault-free one exactly."""
    import functools
    import pickle
    import shutil
    import tempfile

    from repro.resilience.chaos import (
        ChaosCache,
        ChaosPlan,
        chaos_execute_job,
    )
    from repro.runner import levels_job

    traces = [build_trace(name, args.scale)
              for name in args.workloads.split(",")]
    configs = args.prefetchers.split(",")
    specs = [levels_job(trace, config)
             for trace in traces for config in configs]
    plan = ChaosPlan(
        seed=args.seed,
        crash_rate=args.crash_rate,
        hang_rate=args.hang_rate,
        transient_rate=args.transient_rate,
        corrupt_rate=args.corrupt_rate,
        hang_seconds=args.hang_seconds,
    )
    print(f"chaos: {len(specs)}-cell grid ({len(traces)} workloads x "
          f"{len(configs)} configs), seed {args.seed}, jobs {args.jobs}")

    reference = SimulationRunner(jobs=args.jobs).run(specs)
    expected = [pickle.dumps(cell) for cell in reference]

    retry = RetryPolicy(max_attempts=args.retries, backoff_base=0.01)
    execute = functools.partial(chaos_execute_job, plan=plan)
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        cache = ChaosCache(ResultCache(cache_dir), plan)
        # Cold pass: crashes, hangs and transients fire during
        # execution, and scheduled cache entries are corrupted as they
        # publish.  Warm pass: the corrupt entries fail their digest
        # check, get evicted and recomputed (under the same chaos).
        cold = SimulationRunner(jobs=args.jobs, cache=cache, retry=retry,
                                timeout=args.timeout, execute=execute)
        cold_results = cold.run(specs)
        warm = SimulationRunner(jobs=args.jobs, cache=cache, retry=retry,
                                timeout=args.timeout, execute=execute)
        warm_results = warm.run(specs)

        rows = [
            ["worker crashes recovered",
             cold.worker_crashes + warm.worker_crashes],
            ["pool respawns", cold.pool_respawns + warm.pool_respawns],
            ["job timeouts", cold.timeouts + warm.timeouts],
            ["transient retries", cold.retries + warm.retries],
            ["cache entries corrupted", cache.corruptions],
            ["corrupt entries detected & evicted", cache.inner.corrupt],
            ["simulations (fault-free vs chaotic)",
             f"{len(specs)} vs "
             f"{cold.simulations_run + warm.simulations_run}"],
        ]
        print(format_table(["event", "count"], rows,
                           title="Injected faults and recoveries"))

        mismatches = 0
        for label, results in (("cold", cold_results),
                               ("warm", warm_results)):
            for spec, cell, want in zip(specs, results, expected):
                if pickle.dumps(cell) != want:
                    mismatches += 1
                    print(f"MISMATCH ({label}): {spec.trace_name}/"
                          f"{spec.config_name}")
        if mismatches:
            print(f"chaos proof FAILED: {mismatches} cells diverged "
                  f"from the fault-free run")
            return 1
        print(f"chaos proof OK: {2 * len(specs)} recovered cells "
              f"bit-identical to the fault-free run")
        return 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _print_ingest_report(report, *, written: int | None = None) -> None:
    rows = list(report.summary_rows())
    if written is not None:
        rows.append(["records written", written])
    print(format_table(["property", "value"], rows,
                       title=f"Ingestion: {report.source}"))


def cmd_ingest(args) -> int:
    """Trace ingestion: registry actions and the input-fault proof."""
    from repro.ingest import (
        TraceRegistry,
        ingest_k6,
        stream_binary_columns,
        stream_k6_columns,
    )
    from repro.ingest.convert import detect_format
    from repro.ingest.k6 import make_report

    if args.action == "register":
        if not args.file:
            raise ConfigurationError("ingest register needs --file PATH")
        import os

        name = args.name or os.path.basename(args.file)
        registry = TraceRegistry(args.registry)
        entry = registry.register(name, args.file, fmt=args.format)
        print(format_table(
            ["property", "value"],
            [["name", name]] + [[k, entry[k]] for k in sorted(entry)],
            title=f"Registered in {args.registry}"))
        return 0

    if args.action == "verify":
        registry = TraceRegistry(args.registry)
        if args.name:
            registry.verify(args.name)
            results = {args.name: "ok"}
        else:
            results = registry.verify_all()
        rows = [[name, status] for name, status in sorted(results.items())]
        print(format_table(["trace", "verification"], rows,
                           title=f"Registry {args.registry}"))
        return 1 if any(status != "ok" for status in results.values()) else 0

    if args.action == "list":
        registry = TraceRegistry(args.registry)
        rows = [
            [name, entry["format"], entry["records"], entry["bytes"],
             entry["signature"][:16]]
            for name, entry in sorted(registry.traces.items())
        ]
        print(format_table(
            ["trace", "format", "records", "bytes", "signature[:16]"],
            rows, title=f"Registry {args.registry}"))
        return 0

    if args.action == "run":
        if not args.file:
            raise ConfigurationError("ingest run needs --file PATH")
        fmt = args.format or detect_format(args.file)
        stream = (stream_binary_columns if fmt == "binary"
                  else stream_k6_columns)
        report = make_report(args.file, fmt, args.policy,
                             max_errors=args.max_errors,
                             quarantine_path=args.quarantine_path)
        chunks = 0
        for _ in stream(args.file, report=report,
                        chunk_records=args.chunk_records):
            chunks += 1
        _print_ingest_report(report)
        print(f"streamed {report.records} records in {chunks} columnar "
              f"chunk(s) of <= {args.chunk_records}")
        return 0

    if args.action == "chaos":
        return _ingest_chaos(args)
    raise ConfigurationError(f"unknown ingest action {args.action!r}")


def _ingest_chaos(args) -> int:
    """Input-fault proof for the ingestion layer (docs/ingestion.md).

    Asserts the strict policy's per-fault exit codes, the lenient/
    quarantine contract (surviving records == clean minus exactly the
    quarantined ones, proven down to decision-stream digests on both
    engines), the error budget, and the registry's tamper refusal.
    """
    import gzip
    import os
    import shutil
    import tempfile

    from repro.errors import (
        TraceBudgetError,
        TraceChecksumError,
        TraceFormatError,
        TraceTruncatedError,
    )
    from repro.ingest import (
        TraceRegistry,
        ingest_k6,
        read_quarantine,
        write_k6,
    )
    from repro.resilience.chaos import (
        InputFaultPlan,
        corrupt_k6_text,
        truncate_gzip,
    )
    from repro.runner.job import execute_job, trace_job
    from repro.sim.trace import Trace
    from repro.telemetry.export import (
        events_digest,
        read_events_jsonl,
        write_events_jsonl,
    )

    checks: list[tuple[str, bool, str]] = []

    def check(label: str, ok: bool, detail: str) -> None:
        checks.append((label, ok, detail))

    def expect_error(label: str, error_type, code: int, fn) -> None:
        try:
            fn()
        except error_type as error:
            got = exit_code_for(error)
            check(label, got == code, f"{error_type.__name__}, exit {got}")
        except ReproError as error:
            check(label, False,
                  f"wrong error {type(error).__name__}: {error}")
        else:
            check(label, False, "no error raised")

    workdir = tempfile.mkdtemp(prefix="repro-ingest-chaos-")
    try:
        source = build_trace(args.workload, args.scale)
        clean_path = os.path.join(workdir, "clean.k6")
        write_k6(source, clean_path)
        with open(clean_path, "rb") as fh:
            clean_bytes = fh.read()
        clean_trace, _ = ingest_k6(clean_path, name="chaos")

        plan = InputFaultPlan(seed=args.seed, flip_rate=args.flip_rate,
                              garbage_rate=args.garbage_rate)
        corruption = corrupt_k6_text(clean_bytes, plan)
        faulted_path = os.path.join(workdir, "faulted.k6")
        with open(faulted_path, "wb") as fh:
            fh.write(corruption.data)
        print(f"chaos: {len(clean_trace)} clean records, seed {args.seed} "
              f"-> {len(corruption.victims)} bit-flipped victims, "
              f"{corruption.garbage_lines} garbage lines")

        # -- strict policy: one distinct exit code per fault kind ------
        expect_error("strict: bit-flipped record -> format error (14)",
                     TraceFormatError, 14,
                     lambda: ingest_k6(faulted_path, policy="strict"))
        gz_path = os.path.join(workdir, "truncated.k6.gz")
        with open(gz_path, "wb") as fh:
            fh.write(truncate_gzip(gzip.compress(clean_bytes)))
        expect_error("strict: truncated gzip -> truncated error (15)",
                     TraceTruncatedError, 15,
                     lambda: ingest_k6(gz_path, policy="strict"))
        expect_error("lenient: garbage flood -> budget error (17)",
                     TraceBudgetError, 17,
                     lambda: ingest_k6(faulted_path, policy="lenient",
                                       max_errors=0))

        # -- lenient/quarantine contract -------------------------------
        quarantine_path = faulted_path + ".quarantine"
        faulted_trace, report = ingest_k6(
            faulted_path, name="chaos", policy="quarantine",
            quarantine_path=quarantine_path)
        victims = set(corruption.victims)
        expected = Trace([record for index, record in enumerate(clean_trace)
                          if index not in victims], name="chaos")
        check("quarantine: survivors == clean minus victims",
              list(faulted_trace) == list(expected),
              f"{report.records} survivors, {report.skipped} skipped")
        check("quarantine: sidecar holds exactly the skipped records",
              len(read_quarantine(quarantine_path)) == report.skipped
              and report.skipped == corruption.injected_faults,
              f"{report.skipped} rows in {os.path.basename(quarantine_path)}")

        # -- decision streams bit-identical on both engines ------------
        for engine in ("scalar", "batched"):
            results = []
            for trace in (expected, faulted_trace):
                traced = execute_job(
                    trace_job(trace, args.prefetcher, engine=engine))
                path = os.path.join(workdir, f"{engine}-{id(trace)}.jsonl")
                write_events_jsonl(path, traced.events)
                results.append(events_digest(read_events_jsonl(path)))
            check(f"decision streams identical ({engine} engine)",
                  results[0] == results[1], f"digest {results[0][:16]}..")

        # -- registry: tampered file refuses to run or replay ----------
        registry = TraceRegistry(os.path.join(workdir, "traces.json"))
        registry.register("clean", clean_path)
        registry.verify("clean")
        blob = bytearray(clean_bytes)
        blob[len(blob) // 2] ^= 0x01
        with open(clean_path, "wb") as fh:
            fh.write(bytes(blob))
        expect_error("registry: tampered file -> checksum refusal (16)",
                     TraceChecksumError, 16,
                     lambda: registry.load_trace("clean"))

        rows = [[label, "OK" if ok else "FAILED", detail]
                for label, ok, detail in checks]
        print(format_table(["check", "verdict", "detail"], rows,
                           title="Input-fault proof"))
        failed = sum(1 for _, ok, _ in checks if not ok)
        if failed:
            print(f"ingest chaos proof FAILED: {failed} of {len(checks)} "
                  f"checks")
            return 1
        print(f"ingest chaos proof OK: {len(checks)} checks passed")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def cmd_convert(args) -> int:
    """Convert a trace between the k6 and binary interchange formats."""
    from repro.ingest import convert_trace

    journal = CheckpointJournal(args.journal) if args.journal else None
    try:
        report, written = convert_trace(
            args.src, args.dst,
            src_format=args.src_format,
            dst_format=args.dst_format,
            policy=args.policy,
            max_errors=args.max_errors,
            quarantine_path=args.quarantine_path,
            chunk_records=args.chunk_records,
            journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
    _print_ingest_report(report, written=written)
    return 0


def cmd_paper(args) -> int:
    """Evaluate the paper-claim registry; regenerate doc + BENCH."""
    import contextlib
    import pathlib
    import time

    from repro import paperclaims

    if args.list:
        for claim in paperclaims.CLAIMS:
            print(f"{claim.id:26} [{claim.section:11}] {claim.title}")
        return 0

    only = args.only
    if args.mutate:
        # The patch must reach the simulations (in-process) and must not
        # poison the content-addressed store (cache off).
        args.jobs = 1
        args.no_cache = True
        if not only:
            only = list(paperclaims.expected_flips(args.mutate))
        print(f"mutation {args.mutate!r}: forcing --jobs 1 --no-cache; "
              f"claims: {', '.join(only)}")

    backend = make_backend(args)
    engine = paperclaims.ClaimEngine(
        paperclaims.CELLS, paperclaims.CLAIMS, backend)

    mutation = (paperclaims.apply_mutation(args.mutate)
                if args.mutate else contextlib.nullcontext())
    start = time.perf_counter()
    with mutation:
        report = engine.run(only=only,
                            progress=lambda line: print(line, flush=True))
    wall = time.perf_counter() - start

    print(paperclaims.render_verdict_report(report))

    drift = False
    if not only and not args.mutate:
        root = pathlib.Path(__file__).resolve().parents[2]
        doc_path = root / "EXPERIMENTS.md"
        rendered = paperclaims.render_experiments(report)
        if args.write:
            doc_path.write_text(rendered, encoding="utf-8")
            print(f"wrote {doc_path}")
        else:
            committed = (doc_path.read_text(encoding="utf-8")
                         if doc_path.exists() else "")
            drift = committed != rendered
            print("EXPERIMENTS.md "
                  + ("is OUT OF DATE vs live results — run "
                     "`repro paper --write`" if drift
                     else "matches live results byte for byte"))
        bench_path = root / "BENCH_10.json"
        paperclaims.write_bench(report, wall, str(bench_path))
        print(f"wrote {bench_path}")

    if args.check:
        return 1 if (not report.ok or drift) else 0
    return 0


def cmd_serve(args) -> int:
    """Run the simulation job service until drained (docs/service.md)."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    service = JobService(
        workers=args.workers,
        queue_bound=args.queue_bound,
        quota=args.quota,
        shards=args.shards,
        cache=cache,
        journal=args.journal,
        retry=RetryPolicy(max_attempts=args.retries),
        timeout=args.timeout,
        jobs=args.jobs,
    )

    def on_ready(server) -> None:
        print(json.dumps({"event": "serving", "host": server.host,
                          "port": server.port}), flush=True)

    serve_service(service, args.host, args.port,
                  drain_after=args.drain_after, on_ready=on_ready)
    jobs = service.metrics_snapshot()["jobs"]
    print(json.dumps({"event": "drained",
                      "completed": jobs["completed"],
                      "failed": jobs["failed"],
                      "queued": jobs["queued"],
                      "resumed": jobs["resumed"]}), flush=True)
    return 0


def _load_wire_spec(args) -> dict:
    """The wire spec for ``repro submit``: a JSON file or a workload."""
    if args.spec is not None:
        if args.spec == "-":
            raw = sys.stdin.read()
        else:
            try:
                with open(args.spec, encoding="utf-8") as fh:
                    raw = fh.read()
            except OSError as error:
                raise ConfigurationError(
                    f"cannot read job spec {args.spec!r}: {error}"
                ) from error
        try:
            wire = json.loads(raw)
        except ValueError as error:
            raise ConfigurationError(
                f"malformed job spec: not valid JSON: {error}"
            ) from error
        if not isinstance(wire, dict):
            raise ConfigurationError(
                "malformed job spec: expected a JSON object")
        # Validate before connecting: a bad spec fails fast with the
        # configuration exit code whether or not a server is up.
        from repro.service.wire import spec_from_wire

        spec_from_wire(wire)
        return wire
    if args.trace_ref is not None:
        # Resolution and checksum verification happen where the spec is
        # rebuilt — on the server — so no records cross the wire and a
        # tampered registered file is refused there with exit code 16.
        return {
            "kind": "levels",
            "trace_ref": args.trace_ref,
            "registry": args.registry,
            "config_name": args.prefetcher,
            "engine": args.engine,
        }
    if args.workload is None:
        raise ConfigurationError(
            "repro submit needs --spec FILE, --workload NAME or "
            "--trace-ref NAME")
    trace = build_trace(args.workload, args.scale)
    return spec_to_wire(levels_job(trace, args.prefetcher,
                                   engine=args.engine))


def cmd_submit(args) -> int:
    """Submit one job to a running service; print its document."""
    wire = _load_wire_spec(args)
    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    info = client.submit(wire)
    if args.wait:
        info = client.wait(info["key"], timeout=args.timeout)
    print(json.dumps(info, indent=2, sort_keys=True))
    if args.wait and info["state"] == "failed":
        raise JobError(info.get("error") or "job failed")
    return 0


def cmd_poll(args) -> int:
    """Print the current (or, with --wait, terminal) job document."""
    client = ServiceClient(args.host, args.port)
    if args.wait:
        info = client.wait(args.key, timeout=args.timeout)
    else:
        info = client.poll(args.key)
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def add_runner_options(parser: argparse.ArgumentParser) -> None:
    """Shared runner/resilience options for simulation commands."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation cells")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result cache location "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro-sim)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="attempt budget per job for transient "
                             "failures and timeouts (1 disables retry)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SEC",
                        help="per-job wall-clock timeout; the overdue "
                             "worker is killed and the job retried "
                             "(needs --jobs >= 2)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint journal: record resolved cells "
                             "so an interrupted run resumes with zero "
                             "recomputation")
    parser.add_argument("--degraded", action="store_true",
                        help="render FAILED(reason) cells for jobs that "
                             "exhaust their retry budget instead of "
                             "aborting the run")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every repro subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IPCP (ISCA 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-prefetchers").set_defaults(func=cmd_list_prefetchers)
    sub.add_parser("list-workloads").set_defaults(func=cmd_list_workloads)

    run = sub.add_parser("run", help="run one workload + prefetcher")
    run.add_argument("--workload", required=True)
    run.add_argument("--prefetcher", default="ipcp")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--engine", choices=ENGINES, default="scalar",
                     help="simulation engine (docs/engine.md)")
    add_runner_options(run)
    run.set_defaults(func=cmd_run)

    frontend = sub.add_parser(
        "frontend",
        help="instruction-prefetching comparison over the L1-I/ITLB "
             "model (docs/frontend.md)")
    frontend.add_argument("--workloads", default="all",
                          help="comma-separated frontend workload names, "
                               "or 'all'")
    frontend.add_argument("--prefetchers",
                          default="next_line_i,mana_lite,ipcp_i",
                          help="comma-separated frontend configurations "
                               "(see repro.frontend.registry)")
    frontend.add_argument("--scale", type=float, default=0.5)
    frontend.add_argument("--engine", choices=ENGINES, default="scalar",
                          help="frontend engine; 'batched' falls back to "
                               "scalar with a support reason for now")
    frontend.set_defaults(func=cmd_frontend)

    compare = sub.add_parser("compare", help="speedup table")
    compare.add_argument("--workloads", required=True,
                         help="comma-separated workload names")
    compare.add_argument("--prefetchers", default="ipcp,mlop,bingo")
    compare.add_argument("--scale", type=float, default=0.4)
    compare.add_argument("--engine", choices=ENGINES, default="scalar",
                         help="simulation engine (docs/engine.md)")
    add_runner_options(compare)
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser(
        "sweep", help="sensitivity sweep along one system axis")
    sweep.add_argument("--axis", required=True, choices=_SWEEP_AXES)
    sweep.add_argument("--values", required=True,
                       help="comma-separated axis values (GB/s for "
                            "dram-bandwidth, bytes with optional k/m "
                            "suffix for sizes, policy names for "
                            "replacement)")
    sweep.add_argument("--workloads", required=True,
                       help="comma-separated workload names")
    sweep.add_argument("--prefetchers", default="ipcp")
    sweep.add_argument("--scale", type=float, default=0.4)
    add_runner_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    analyze = sub.add_parser("analyze", help="Section III pattern profile")
    analyze.add_argument("--workload", required=True)
    analyze.add_argument("--scale", type=float, default=0.4)
    analyze.set_defaults(func=cmd_analyze)

    dump = sub.add_parser("dump-trace", help="write a workload trace file")
    dump.add_argument("--workload", required=True)
    dump.add_argument("--out", required=True)
    dump.add_argument("--scale", type=float, default=0.5)
    dump.set_defaults(func=cmd_dump_trace)

    run_trace = sub.add_parser("run-trace", help="simulate a trace file")
    run_trace.add_argument("--trace-file", required=True)
    run_trace.add_argument("--prefetcher", default="ipcp")
    run_trace.set_defaults(func=cmd_run_trace)

    validate = sub.add_parser(
        "validate", help="audit a prefetcher's request contract")
    validate.add_argument("--prefetcher", required=True)
    validate.add_argument("--workload", default="roms_like")
    validate.add_argument("--scale", type=float, default=0.2)
    validate.add_argument("--allow-cross-page", action="store_true")
    validate.set_defaults(func=cmd_validate)

    report = sub.add_parser(
        "report", help="regenerate the core paper artifacts")
    report.add_argument("--out", default="report")
    report.add_argument("--scale", type=float, default=0.4)
    add_runner_options(report)
    report.set_defaults(func=cmd_report)

    verify = sub.add_parser(
        "verify",
        help="differential verification: oracle diff, invariants, "
             "golden-stats regression (see docs/verification.md)")
    verify.add_argument("--baseline", default="tests/data/golden_stats.json",
                        metavar="PATH",
                        help="golden-stats baseline JSON (committed)")
    verify.add_argument("--update-baseline", action="store_true",
                        help="re-snapshot the golden baseline instead of "
                             "comparing against it")
    verify.add_argument("--tolerance", type=float, default=0.0,
                        metavar="REL",
                        help="allowed relative drift per metric "
                             "(default 0: exact — the simulator is "
                             "deterministic)")
    verify.add_argument("--workloads", default=None,
                        help="baseline workload grid (comma-separated; "
                             "only with --update-baseline)")
    verify.add_argument("--prefetchers", default=None,
                        help="baseline prefetcher grid (comma-separated; "
                             "only with --update-baseline; default: all "
                             "registered)")
    verify.add_argument("--scale", type=float, default=None,
                        help="baseline workload scale (only with "
                             "--update-baseline)")
    verify.add_argument("--invariant-scale", type=float, default=0.08,
                        help="workload scale for the invariant sweep")
    verify.add_argument("--skip-oracle", action="store_true",
                        help="skip the oracle lockstep diff")
    verify.add_argument("--skip-invariants", action="store_true",
                        help="skip the runtime-invariant sweep")
    verify.add_argument("--skip-cross-engine", action="store_true",
                        help="skip the scalar-vs-batched equivalence gate")
    verify.add_argument("--skip-golden", action="store_true",
                        help="skip the golden-stats regression")
    add_runner_options(verify)
    verify.set_defaults(func=cmd_verify)

    trace_cmd = sub.add_parser(
        "trace",
        help="record the prefetcher's decision-level event stream "
             "(classify/issue/drop/useful/epoch/meta) and reconcile it "
             "against the run's counters (see docs/observability.md)")
    trace_cmd.add_argument("--workload", default=None)
    trace_cmd.add_argument("--prefetcher", default="ipcp")
    trace_cmd.add_argument("--scale", type=float, default=0.2)
    trace_cmd.add_argument("--engine", choices=ENGINES, default="scalar",
                           help="simulation engine (a telemetry run "
                                "always falls back to scalar)")
    trace_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the event stream (.jsonl canonical, "
                                ".csv flat)")
    trace_cmd.add_argument("--replay", default=None, metavar="PATH",
                           help="summarize a previously written JSONL "
                                "event stream instead of simulating")
    add_runner_options(trace_cmd)
    trace_cmd.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="cProfile the simulator hot path per phase (warm-up vs "
             "ROI) for one workload + prefetcher")
    profile.add_argument("--workload", required=True)
    profile.add_argument("--prefetcher", default="ipcp")
    profile.add_argument("--scale", type=float, default=0.2)
    profile.add_argument("--top", type=int, default=12,
                         help="functions shown per phase")
    profile.set_defaults(func=cmd_profile)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection proof: a sweep surviving worker "
             "crashes, hangs, transient errors and corrupt cache "
             "entries must be bit-identical to a fault-free run "
             "(see docs/resilience.md)")
    chaos.add_argument("--workloads", default="bwaves_like,gcc_like",
                       help="comma-separated workload names")
    chaos.add_argument("--prefetchers", default="none,ipcp",
                       help="comma-separated prefetcher configurations")
    chaos.add_argument("--scale", type=float, default=0.05)
    chaos.add_argument("--seed", type=int, default=1,
                       help="fault-schedule seed (same seed = same "
                            "faults)")
    chaos.add_argument("--jobs", type=int, default=2, metavar="N")
    chaos.add_argument("--retries", type=int, default=4, metavar="N")
    chaos.add_argument("--timeout", type=float, default=0.75,
                       metavar="SEC",
                       help="per-job deadline that converts injected "
                            "hangs into timeouts")
    chaos.add_argument("--crash-rate", type=float, default=0.25)
    chaos.add_argument("--hang-rate", type=float, default=0.25)
    chaos.add_argument("--transient-rate", type=float, default=0.25)
    chaos.add_argument("--corrupt-rate", type=float, default=0.5)
    chaos.add_argument("--hang-seconds", type=float, default=30.0)
    chaos.set_defaults(func=cmd_chaos)

    ingest = sub.add_parser(
        "ingest",
        help="hardened trace ingestion: register/verify checksummed "
             "traces, stream-ingest k6/binary files under a fault "
             "policy, run the input-fault proof (docs/ingestion.md)")
    ingest.add_argument("action",
                        choices=("register", "verify", "list", "run",
                                 "chaos"),
                        help="register/verify/list work on the registry; "
                             "run streams one file; chaos runs the "
                             "input-fault proof")
    ingest.add_argument("--registry", default="traces.json", metavar="PATH",
                        help="trace registry document (JSON)")
    ingest.add_argument("--name", default=None,
                        help="registry entry name (default: file basename; "
                             "for verify: all entries)")
    ingest.add_argument("--file", default=None, metavar="PATH",
                        help="trace file for register/run")
    ingest.add_argument("--format", choices=("k6", "binary"), default=None,
                        help="trace format (default: detect by magic)")
    ingest.add_argument("--policy",
                        choices=("strict", "lenient", "quarantine"),
                        default="strict",
                        help="malformed-record policy for ingest run")
    ingest.add_argument("--max-errors", type=int, default=1000, metavar="N",
                        help="lenient/quarantine malformed-record budget")
    ingest.add_argument("--quarantine-path", default=None, metavar="PATH",
                        help="quarantine sidecar (default: "
                             "<file>.quarantine)")
    ingest.add_argument("--chunk-records", type=int, default=65536,
                        metavar="N",
                        help="records per streamed columnar chunk")
    ingest.add_argument("--workload", default="bwaves_like",
                        help="chaos: workload synthesized into the clean "
                             "trace")
    ingest.add_argument("--prefetcher", default="ipcp",
                        help="chaos: prefetcher for the decision-stream "
                             "comparison")
    ingest.add_argument("--scale", type=float, default=0.05)
    ingest.add_argument("--seed", type=int, default=1,
                        help="chaos: input-fault schedule seed")
    ingest.add_argument("--flip-rate", type=float, default=0.05,
                        help="chaos: per-record command bit-flip chance")
    ingest.add_argument("--garbage-rate", type=float, default=0.02,
                        help="chaos: per-record garbage-line chance")
    ingest.set_defaults(func=cmd_ingest)

    convert = sub.add_parser(
        "convert",
        help="convert a trace between k6 text and RIB1 binary "
             "(streaming; resumable into binary via --journal)")
    convert.add_argument("src", help="source trace file")
    convert.add_argument("dst", help="destination trace file")
    convert.add_argument("--src-format", choices=("k6", "binary"),
                         default=None,
                         help="source format (default: detect by magic)")
    convert.add_argument("--dst-format", choices=("k6", "binary"),
                         default=None,
                         help="destination format (default: .k6/.k6.gz "
                              "-> k6, else binary)")
    convert.add_argument("--policy",
                         choices=("strict", "lenient", "quarantine"),
                         default="strict")
    convert.add_argument("--max-errors", type=int, default=1000,
                         metavar="N")
    convert.add_argument("--quarantine-path", default=None, metavar="PATH")
    convert.add_argument("--chunk-records", type=int, default=65536,
                         metavar="N",
                         help="records between resume checkpoints")
    convert.add_argument("--journal", default=None, metavar="PATH",
                         help="checkpoint journal enabling resume of an "
                              "interrupted conversion into binary")
    convert.set_defaults(func=cmd_convert)

    paper = sub.add_parser(
        "paper",
        help="evaluate the paper-claim registry; regenerate "
             "EXPERIMENTS.md and BENCH_10.json",
    )
    paper.add_argument("--check", action="store_true",
                       help="exit nonzero if any claim flips or "
                            "EXPERIMENTS.md drifts from live results")
    paper.add_argument("--write", action="store_true",
                       help="rewrite EXPERIMENTS.md from live results")
    paper.add_argument("--only", nargs="+", default=None, metavar="ID",
                       help="evaluate only these claim ids "
                            "(skips doc/BENCH handling)")
    paper.add_argument("--list", action="store_true",
                       help="list claim ids and exit")
    paper.add_argument("--mutate", default=None, metavar="NAME",
                       help="inject a seeded one-line core mutation "
                            "(proves the harness flips); forces "
                            "--jobs 1 --no-cache")
    add_runner_options(paper)
    paper.set_defaults(func=cmd_paper)

    mix = sub.add_parser(
        "mix",
        help="homogeneous multicore mix, or the graded mix1-mix7 "
             "artifact pipeline (run/summarize/plot)")
    mix.add_argument("action", nargs="?", default=None,
                     choices=("run", "summarize", "plot"),
                     help="graded-suite pipeline stage: run simulates "
                          "into results.jsonl, summarize reduces to "
                          "summary.json, plot renders plot.txt; omit "
                          "for a homogeneous --workload mix")
    mix.add_argument("--workload", default=None,
                     help="homogeneous mode: benchmark to replicate on "
                          "every core")
    mix.add_argument("--cores", type=int, default=4)
    mix.add_argument("--prefetcher", default="ipcp")
    mix.add_argument("--scale", type=float, default=None,
                     help="trace scale (default 0.25 homogeneous, "
                          "0.2 for the graded pipeline)")
    mix.add_argument("--mix", default=None, metavar="NAME",
                     help="graded mix to process (mix1..mix7; "
                          "default: all)")
    mix.add_argument("--configs", default="ipcp,mlop,bingo",
                     metavar="LIST",
                     help="comma-separated prefetcher configs for the "
                          "pipeline grid (the 'none' baseline always "
                          "runs)")
    mix.add_argument("--out", default="benchmarks/out/mix", metavar="DIR",
                     help="artifact root (one subdirectory per mix)")
    mix.add_argument("--warmup", type=int, default=1_500, metavar="N",
                     help="pipeline warm-up instructions per core")
    mix.add_argument("--roi", type=int, default=6_000, metavar="N",
                     help="pipeline ROI instructions per core")
    mix.add_argument("--engine", choices=ENGINES, default="scalar",
                     help="requested engine; mixes report the scalar "
                          "fallback reason instead of silently ignoring "
                          "--engine batched")
    add_runner_options(mix)
    mix.set_defaults(func=cmd_mix)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the simulation job service (docs/service.md)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8642,
                           help="bind port; 0 picks an ephemeral port "
                                "(printed in the 'serving' line)")
    serve_cmd.add_argument("--workers", type=int, default=2, metavar="N",
                           help="executor threads draining the job queue")
    serve_cmd.add_argument("--queue-bound", type=int, default=64,
                           metavar="N",
                           help="max queued jobs before submissions are "
                                "rejected with 429 + Retry-After")
    serve_cmd.add_argument("--quota", type=int, default=None, metavar="N",
                           help="max in-flight jobs per tenant "
                                "(default: unlimited)")
    serve_cmd.add_argument("--shards", type=int, default=4, metavar="N",
                           help="queue shards (keys hash-distributed)")
    serve_cmd.add_argument("--drain-after", type=float, default=None,
                           metavar="SEC",
                           help="drain and exit after this many seconds "
                                "(CI/testing; default: serve until "
                                "SIGTERM)")
    serve_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="shared result cache location (default: "
                                "$REPRO_CACHE_DIR or ~/.cache/repro-sim)")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="disable the shared result cache")
    serve_cmd.add_argument("--journal", default=None, metavar="PATH",
                           help="service journal: checkpoint accepted "
                                "jobs so a drained service resumes them "
                                "on restart")
    serve_cmd.add_argument("--retries", type=int, default=3, metavar="N",
                           help="attempt budget per job for transient "
                                "failures")
    serve_cmd.add_argument("--timeout", type=float, default=None,
                           metavar="SEC",
                           help="per-job wall-clock timeout (needs "
                                "--jobs >= 2)")
    serve_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes per executor thread")
    serve_cmd.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a job to a running service",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8642)
    submit.add_argument("--tenant", default="default",
                        help="tenant name for quota accounting")
    submit.add_argument("--spec", default=None, metavar="FILE",
                        help="wire-format job spec as JSON ('-' reads "
                             "stdin); see docs/service.md")
    submit.add_argument("--workload", default=None,
                        help="build a levels job for this workload "
                             "instead of reading --spec")
    submit.add_argument("--trace-ref", default=None, metavar="NAME",
                        help="submit a levels job for a registered trace "
                             "(resolved and checksum-verified server-side "
                             "against --registry)")
    submit.add_argument("--registry", default="traces.json", metavar="PATH",
                        help="trace registry for --trace-ref (a path on "
                             "the server's filesystem)")
    submit.add_argument("--prefetcher", default="ipcp")
    submit.add_argument("--scale", type=float, default=0.25)
    submit.add_argument("--engine", choices=ENGINES, default="scalar",
                        help="simulation engine for --workload jobs")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SEC", help="--wait deadline")
    submit.set_defaults(func=cmd_submit)

    poll = sub.add_parser(
        "poll",
        help="poll a submitted job by key",
    )
    poll.add_argument("key", help="job key returned by submit")
    poll.add_argument("--host", default="127.0.0.1")
    poll.add_argument("--port", type=int, default=8642)
    poll.add_argument("--wait", action="store_true",
                      help="block until the job is terminal")
    poll.add_argument("--timeout", type=float, default=None,
                      metavar="SEC", help="--wait deadline")
    poll.set_defaults(func=cmd_poll)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Error hygiene: every :class:`ReproError` subclass maps to its own
    nonzero exit code (see docs/resilience.md) and prints a one-line
    message, never a traceback.  Ctrl-C flushes any open checkpoint
    journals before exiting 130, so an interrupted sweep resumes from
    exactly where it stopped.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        flushed = flush_active_journals()
        note = (f"; {flushed} checkpoint journal(s) flushed"
                if flushed else "")
        print(f"interrupted{note}", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
