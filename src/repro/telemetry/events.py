"""Typed decision events emitted by the IPCP stack.

One flat, frozen dataclass covers every event kind so streams stay
picklable (for the result cache), hashable (for dedup in tests) and
trivially serializable to JSONL/CSV.  Unused fields keep their
defaults and are omitted from the JSON form.

Event kinds and the fields they populate:

``classify``
    An IP was (re)classified: the bouquet walk picked a different
    winning class for this IP than the last time it issued.
    Fields: ``ip``, ``pf_class`` (new class), ``prev_class`` (previous
    winning class, ``0``/NONE for a first classification), ``cycle``.
``issue``
    A prefetch from this level's prefetcher was issued and filled
    (fires from the cache's fill feedback, so per-class issue counts
    reconcile exactly with ``CacheStats.pf_issued_by_class``).
    Fields: ``addr``, ``pf_class``, ``ip``/``cycle`` of the triggering
    access.
``drop``
    A candidate prefetch was suppressed before reaching the cache.
    ``reason`` is one of :data:`DROP_RR` (recent-request filter hit,
    with the dropped ``addr``), :data:`DROP_PAGE` (target outside the
    trigger's 4 KB page) or :data:`DROP_THROTTLE` (one event per
    truncated burst: the class degree ``degree`` is below its default
    ``prev_degree``, so ``prev_degree - degree`` candidates were never
    generated).
``useful``
    A demand access hit a block this level's prefetcher brought in
    (reconciles exactly with ``CacheStats.pf_useful_by_class``).
    Fields: ``addr``, ``pf_class``.
``epoch``
    A per-class accuracy epoch closed (every 256 fills): ``pf_class``,
    measured ``accuracy``, ``prev_degree`` -> ``degree``.
``meta``
    An L1 prefetch arrived at the L2 carrying the 9-bit class
    metadata packet: ``reason`` is the decoded class name
    (``cs``/``gs``/``nl``/``none``), ``stride`` the decoded 7-bit
    stride, ``ip``/``addr`` from the arriving request.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

CLASSIFY = "classify"
ISSUE = "issue"
DROP = "drop"
USEFUL = "useful"
EPOCH = "epoch"
META = "meta"

EVENT_KINDS = (CLASSIFY, ISSUE, DROP, USEFUL, EPOCH, META)

DROP_RR = "rr_hit"
DROP_PAGE = "page_bound"
DROP_THROTTLE = "throttle"

DROP_REASONS = (DROP_RR, DROP_PAGE, DROP_THROTTLE)


@dataclass(frozen=True)
class Event:
    """One decision-level event (see module docstring for the schema)."""

    kind: str
    level: str = "l1"
    cycle: int = 0
    ip: int = 0
    addr: int = 0
    pf_class: int = 0
    prev_class: int = 0
    reason: str = ""
    accuracy: float = -1.0
    degree: int = 0
    prev_degree: int = 0
    stride: int = 0

    def to_dict(self) -> dict:
        """Compact dict form: defaulted fields are omitted (kind stays)."""
        out = {"kind": self.kind, "level": self.level}
        for spec in _OPTIONAL_FIELDS:
            value = getattr(self, spec.name)
            if value != spec.default:
                out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Inverse of :meth:`to_dict` (unknown keys rejected by the ctor)."""
        return cls(**data)


_OPTIONAL_FIELDS = tuple(
    spec for spec in fields(Event) if spec.name not in ("kind", "level")
)

EVENT_FIELDS = tuple(spec.name for spec in fields(Event))
