"""Recorder protocol, the in-memory event log and stream analysis.

The base :class:`Recorder` *is* the null recorder: ``enabled`` is
False and ``emit`` discards.  Every instrumented hot path hoists the
flag into a local and guards emissions with it, so the default
configuration pays one attribute load per guarded site and allocates
nothing — simulation statistics stay bit-identical to a build without
telemetry.

:func:`reconcile` is the correctness contract of the whole layer: with
recording on, the per-class ``issue``/``useful`` event counts must
equal the cache hierarchy's ``pf_issued_by_class`` /
``pf_useful_by_class`` counters *exactly* — both fire from the same
cache feedback edges, so any daylight between them is a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.events import DROP, EPOCH, ISSUE, META, USEFUL, Event


class Recorder:
    """Null recorder: the zero-overhead default sink.

    Subclasses set ``enabled`` True and override :meth:`emit`.
    Components treat ``enabled`` as the master switch and skip event
    construction entirely when it is False.
    """

    enabled = False

    def emit(self, event: Event) -> None:
        """Record one event (no-op here)."""

    def reset(self) -> None:
        """Forget everything recorded so far (no-op here).

        :func:`repro.sim.engine.simulate` calls this at the end of
        warm-up, alongside ``Hierarchy.reset_stats()``, so an event
        stream covers exactly the measured region of interest and
        reconciles against the ROI counters.
        """


NULL_RECORDER = Recorder()


class EventLog(Recorder):
    """In-memory recorder: appends every event to :attr:`events`."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def reset(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


def _by_class(events, kind: str, level: str) -> dict[int, int]:
    counts: dict[int, int] = {}
    for event in events:
        if event.kind == kind and event.level == level:
            counts[event.pf_class] = counts.get(event.pf_class, 0) + 1
    return counts


@dataclass(frozen=True)
class StreamSummary:
    """Aggregate view of one event stream (what ``repro trace`` prints)."""

    total: int
    kinds: tuple[tuple[str, int], ...]
    issued_by_class: tuple[tuple[str, int, int], ...]  # (level, class, n)
    useful_by_class: tuple[tuple[str, int, int], ...]
    drops_by_reason: tuple[tuple[str, int], ...]
    epochs: int
    meta_by_class: tuple[tuple[str, int], ...]


def summarize(events) -> StreamSummary:
    """Reduce an event stream to the counts a human wants first."""
    events = list(events)
    kinds: dict[str, int] = {}
    drops: dict[str, int] = {}
    metas: dict[str, int] = {}
    issued: dict[tuple[str, int], int] = {}
    useful: dict[tuple[str, int], int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.kind == DROP:
            drops[event.reason] = drops.get(event.reason, 0) + 1
        elif event.kind == META:
            metas[event.reason] = metas.get(event.reason, 0) + 1
        elif event.kind == ISSUE:
            key = (event.level, event.pf_class)
            issued[key] = issued.get(key, 0) + 1
        elif event.kind == USEFUL:
            key = (event.level, event.pf_class)
            useful[key] = useful.get(key, 0) + 1
    return StreamSummary(
        total=len(events),
        kinds=tuple(sorted(kinds.items())),
        issued_by_class=tuple(
            (level, cls, n) for (level, cls), n in sorted(issued.items())
        ),
        useful_by_class=tuple(
            (level, cls, n) for (level, cls), n in sorted(useful.items())
        ),
        drops_by_reason=tuple(sorted(drops.items())),
        epochs=kinds.get(EPOCH, 0),
        meta_by_class=tuple(sorted(metas.items())),
    )


def reconcile(events, result) -> list[str]:
    """Diff an event stream against a run's per-class cache counters.

    ``result`` is a :class:`repro.sim.engine.SimResult` (duck-typed so
    this module stays dependency-free).  Returns one human-readable
    mismatch per drifting (level, metric, class) triple; an empty list
    means the stream accounts for every counted prefetch exactly.
    """
    mismatches: list[str] = []
    for level in ("l1", "l2"):
        stats = getattr(result, level, None)
        if stats is None:
            continue
        pairs = (
            ("issue", ISSUE, dict(stats.pf_issued_by_class)),
            ("useful", USEFUL, dict(stats.pf_useful_by_class)),
        )
        for label, kind, counters in pairs:
            from_events = _by_class(events, kind, level)
            for cls in sorted(set(counters) | set(from_events)):
                want = counters.get(cls, 0)
                got = from_events.get(cls, 0)
                if want != got:
                    mismatches.append(
                        f"{level}/{label}/class{cls}: "
                        f"{got} events vs {want} counted"
                    )
    return mismatches


@dataclass(frozen=True)
class TraceRunResult:
    """Payload of one ``trace``-kind job: the run plus its ROI events.

    Picklable end to end (``Event`` is a frozen dataclass and the
    ``result`` is a plain :class:`~repro.sim.engine.SimResult`), so
    traced cells flow through the persistent result cache and the
    checkpoint journal exactly like untraced ones.
    """

    result: object
    events: tuple = field(default=())

    def summary(self) -> StreamSummary:
        return summarize(self.events)

    def reconcile(self) -> list[str]:
        return reconcile(self.events, self.result)
