"""Event-stream exporters: JSONL (canonical) and CSV (flat).

JSONL is the interchange format — ``repro trace --out events.jsonl``
writes it, ``repro trace --replay events.jsonl`` reads it back, and the
CI smoke job asserts it parses.  Each line is one compact JSON object
with defaulted fields omitted (see :meth:`repro.telemetry.events.
Event.to_dict`).  CSV keeps every column so spreadsheet tooling gets a
rectangular table.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable

from repro.telemetry.events import EVENT_FIELDS, Event

# repro.stats pulls in the core package (for per-class metrics), which
# itself imports repro.telemetry — deferring the exporter plumbing
# import keeps this module importable from the package __init__.


def write_events_jsonl(path: str, events: Iterable[Event]) -> None:
    """Write an event stream as JSON-lines."""
    from repro.stats.export import write_jsonl

    write_jsonl(path, (event.to_dict() for event in events))


def events_digest(events: Iterable[Event]) -> str:
    """Order-sensitive content hash of a decision stream.

    Hashes each event's canonical compact-JSON form in order, so two
    runs emitted bit-identical decision streams iff their digests
    match.  ``repro trace`` prints it for both live runs and
    ``--replay``, which is how the ingestion chaos proof compares a
    lenient-mode run against its clean-minus-quarantined twin without
    shipping either event stream around.
    """
    digest = hashlib.blake2b(digest_size=16)
    for event in events:
        digest.update(json.dumps(event.to_dict(), sort_keys=True,
                                 separators=(",", ":")).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def read_events_jsonl(path: str) -> list[Event]:
    """Read an event stream written by :func:`write_events_jsonl`."""
    from repro.stats.export import read_jsonl

    return [Event.from_dict(row) for row in read_jsonl(path)]


def write_events_csv(path: str, events: Iterable[Event]) -> None:
    """Write an event stream as a flat CSV with every event field."""
    from repro.stats.export import write_csv

    rows = [
        [getattr(event, name) for name in EVENT_FIELDS] for event in events
    ]
    write_csv(path, list(EVENT_FIELDS), rows)
