"""Event-stream exporters: JSONL (canonical) and CSV (flat).

JSONL is the interchange format — ``repro trace --out events.jsonl``
writes it, ``repro trace --replay events.jsonl`` reads it back, and the
CI smoke job asserts it parses.  Each line is one compact JSON object
with defaulted fields omitted (see :meth:`repro.telemetry.events.
Event.to_dict`).  CSV keeps every column so spreadsheet tooling gets a
rectangular table.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.stats.export import read_jsonl, write_csv, write_jsonl
from repro.telemetry.events import EVENT_FIELDS, Event


def write_events_jsonl(path: str, events: Iterable[Event]) -> None:
    """Write an event stream as JSON-lines."""
    write_jsonl(path, (event.to_dict() for event in events))


def read_events_jsonl(path: str) -> list[Event]:
    """Read an event stream written by :func:`write_events_jsonl`."""
    return [Event.from_dict(row) for row in read_jsonl(path)]


def write_events_csv(path: str, events: Iterable[Event]) -> None:
    """Write an event stream as a flat CSV with every event field."""
    rows = [
        [getattr(event, name) for name in EVENT_FIELDS] for event in events
    ]
    write_csv(path, list(EVENT_FIELDS), rows)
