"""cProfile hooks for the simulator hot path, split by phase.

``Cpu.run`` is the simulator's single hottest loop (its inlined body is
hand-optimized — see :mod:`repro.sim.cpu`), and the interesting
question is always *where a phase spends its time*: warm-up exercises
cold caches and heavy prefetcher training, the ROI the steady state.
:func:`profile_phases` drives the same warm-up/ROI split as
:func:`repro.sim.engine.simulate`, wrapping each phase's ``Cpu.run``
call in its own :class:`cProfile.Profile`, and returns structured
per-function rows the ``repro profile`` subcommand renders as tables.

:func:`profile_job` applies the same treatment to a runner
:class:`~repro.runner.job.JobSpec`, so any cacheable cell (a sweep
point, a golden-stats cell) can be profiled exactly as the parallel
runner would execute it.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsys.hierarchy import build_hierarchy
from repro.params import SystemParams
from repro.prefetchers.base import Prefetcher
from repro.sim.cpu import Cpu
from repro.sim.trace import Trace


@dataclass(frozen=True)
class FunctionStat:
    """One function's share of a profiled phase."""

    name: str  # "file:lineno(function)" with the path basenamed
    calls: int
    tottime: float  # seconds spent in the function itself
    cumtime: float  # seconds including callees


@dataclass(frozen=True)
class PhaseProfile:
    """Profile of one simulation phase (warm-up or ROI)."""

    phase: str
    instructions: int
    cycles: int
    wall_seconds: float
    functions: tuple[FunctionStat, ...]

    def rows(self) -> list[list]:
        """Table rows for :func:`repro.stats.report.format_table`."""
        return [
            [stat.name, stat.calls, stat.tottime, stat.cumtime]
            for stat in self.functions
        ]


def _top_functions(profiler: cProfile.Profile, top: int
                   ) -> tuple[tuple[FunctionStat, ...], float]:
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, funcname), entry in stats.stats.items():
        _, ncalls, tottime, cumtime, _ = entry
        label = f"{os.path.basename(filename)}:{lineno}({funcname})"
        rows.append(FunctionStat(
            name=label, calls=ncalls, tottime=tottime, cumtime=cumtime,
        ))
    rows.sort(key=lambda stat: (-stat.tottime, stat.name))
    return tuple(rows[:top]), stats.total_tt


def profile_phases(
    trace: Trace,
    l1_prefetcher: Prefetcher | None = None,
    l2_prefetcher: Prefetcher | None = None,
    llc_prefetcher: Prefetcher | None = None,
    params: SystemParams | None = None,
    warmup: int | None = None,
    top: int = 12,
) -> list[PhaseProfile]:
    """Profile the simulator over ``trace``, one profile per phase.

    Mirrors :func:`repro.sim.engine.simulate`'s structure — warm-up
    (default 20% of the trace), statistics reset, then the ROI — so the
    profile describes exactly the code paths a real run executes.
    """
    if top < 1:
        raise ConfigurationError("top must be >= 1")
    params = params or SystemParams()
    hierarchy = build_hierarchy(
        params,
        l1_prefetcher=l1_prefetcher,
        l2_prefetcher=l2_prefetcher,
        llc_prefetcher=llc_prefetcher,
    )
    cpu = Cpu(hierarchy, params.core)
    warmup = warmup if warmup is not None else len(trace) // 5
    warmup = min(warmup, len(trace))

    profiles: list[PhaseProfile] = []
    for phase, records in (("warmup", trace[:warmup]),
                           ("roi", trace[warmup:])):
        if not len(records):
            continue
        profiler = cProfile.Profile()
        start_instr, start_cycle = cpu.mark()
        profiler.enable()
        cpu.run(records)
        profiler.disable()
        functions, total = _top_functions(profiler, top)
        profiles.append(PhaseProfile(
            phase=phase,
            instructions=cpu.retired - start_instr,
            cycles=cpu.cycle - start_cycle,
            wall_seconds=total,
            functions=functions,
        ))
        if phase == "warmup":
            hierarchy.reset_stats()
    return profiles


def profile_job(spec, top: int = 12) -> list[PhaseProfile]:
    """Profile one runner :class:`~repro.runner.job.JobSpec` cell.

    Only ``levels``/``trace`` kinds carry a registered configuration a
    profile can rebuild; other kinds raise :class:`ConfigurationError`.
    """
    from repro.prefetchers import make_prefetcher
    from repro.runner.job import KIND_LEVELS, KIND_TRACE

    if spec.kind not in (KIND_LEVELS, KIND_TRACE):
        raise ConfigurationError(
            f"cannot profile a {spec.kind!r} job; expected levels/trace"
        )
    levels = make_prefetcher(spec.config_name)
    built = {level: factory() for level, factory in levels.items()}
    return profile_phases(
        spec.build_trace(),
        l1_prefetcher=built.get("l1"),
        l2_prefetcher=built.get("l2"),
        llc_prefetcher=built.get("llc"),
        params=spec.params,
        warmup=spec.warmup,
        top=top,
    )
