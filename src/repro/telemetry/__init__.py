"""Decision-level observability for the IPCP stack.

The simulator's aggregate counters (``pf_issued``, coverage, MPKI) say
*how much* a prefetcher helped; they cannot say *why* — which IP was
classified into which class, why a candidate prefetch was dropped, when
an epoch's accuracy forced the throttler to back off.  The paper's
per-class evaluation (Fig. 12's class contributions, Fig. 13's
utility/priority ablations, Table IV) is exactly this decision-level
view, so this package makes it a first-class artifact:

* :class:`Recorder` — the protocol every component emits through.  The
  default is the shared :data:`NULL_RECORDER` whose ``enabled`` flag is
  False; hot paths guard every emission with that flag, so a simulation
  without recording runs the exact pre-telemetry instruction stream and
  produces bit-identical statistics.
* :class:`Event` — one typed, flat, picklable record per decision:
  ``classify`` / ``issue`` / ``drop`` / ``useful`` / ``epoch`` /
  ``meta`` (see :mod:`repro.telemetry.events` for the schema).
* :class:`EventLog` — the in-memory recorder used by the ``trace`` job
  kind and the ``repro trace`` CLI; its event stream reconciles
  *exactly* against the cache hierarchy's per-class counters
  (:func:`reconcile`).
* :mod:`repro.telemetry.export` — JSONL/CSV event-stream exporters.
* :mod:`repro.telemetry.profiling` — cProfile-based per-phase
  (warm-up vs ROI) profiles of the simulator hot path.

See ``docs/observability.md`` for the full event schema and CLI
examples.
"""

from repro.telemetry.export import events_digest
from repro.telemetry.events import (
    CLASSIFY,
    DROP,
    DROP_PAGE,
    DROP_RR,
    DROP_THROTTLE,
    EPOCH,
    EVENT_KINDS,
    ISSUE,
    META,
    USEFUL,
    Event,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    EventLog,
    Recorder,
    TraceRunResult,
    reconcile,
    summarize,
)

__all__ = [
    "CLASSIFY",
    "DROP",
    "DROP_PAGE",
    "DROP_RR",
    "DROP_THROTTLE",
    "EPOCH",
    "EVENT_KINDS",
    "ISSUE",
    "META",
    "USEFUL",
    "Event",
    "EventLog",
    "events_digest",
    "NULL_RECORDER",
    "Recorder",
    "TraceRunResult",
    "reconcile",
    "summarize",
]
