"""Future-work bench (Section VII): IPCP + a temporal class.

The paper closes by proposing to "enhance IPCP with a temporal
component for covering temporal and irregular accesses" and notes that
temporal prefetchers can adopt IPCP as their spatial counterpart
because it costs < 900 B.  This bench runs a recurring irregular
pointer loop (spatially unprefetchable, temporally trivial) and shows:

* plain IPCP is blind to it;
* IPCP + TS covers it at a cost comparable to dedicated temporal
  prefetchers (ISB/Domino/Triage at the L2);
* on regular traces the TS class stays silent (no regression).
"""

from conftest import once

from repro.analysis import run_levels
from repro.stats import format_table
from repro.workloads.spec import extension_trace, spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-temporal",)


CONFIGS = ["none", "ipcp", "ipcp_temporal", "isb", "domino", "triage"]


def run_all():
    loop = extension_trace("temporal_loop_like", 3.0)
    stream = spec_trace("lbm_like", 0.4)
    results = {}
    for config in CONFIGS:
        results[config] = (
            run_levels(loop, config),
            run_levels(stream, config),
        )
    return results


def test_extension_temporal_class(benchmark, emit):
    results = once(benchmark, run_all)
    base_loop, base_stream = results["none"]
    rows = []
    for config in CONFIGS[1:]:
        loop_result, stream_result = results[config]
        rows.append([
            config,
            loop_result.speedup_over(base_loop),
            stream_result.speedup_over(base_stream),
        ])
    emit("extension_temporal", format_table(
        ["config", "temporal_loop speedup", "lbm_like speedup"], rows,
        title="Future work: temporal class (recurring irregular loop "
              "vs a regular stream)",
    ))
    by_config = {row[0]: row for row in rows}

    # Plain IPCP cannot touch the irregular loop...
    assert by_config["ipcp"][1] < 1.1
    # ...the TS extension covers it...
    assert by_config["ipcp_temporal"][1] > by_config["ipcp"][1] + 0.08
    # ...in the same league as dedicated temporal prefetchers...
    best_temporal = max(by_config[c][1] for c in ("isb", "domino", "triage"))
    assert by_config["ipcp_temporal"][1] > best_temporal - 0.15
    # ...without regressing the spatial bread-and-butter.
    assert by_config["ipcp_temporal"][2] > by_config["ipcp"][2] - 0.05
