"""Section III motivation: IPs have unique, classifiable behaviour.

Before any simulation, the paper motivates IPCP with a static analysis
of access patterns: bwaves' IP_A strides by 3, mcf's IP_B alternates
1,2,1,2, and lbm/gcc accesses form dense global streams under jumbled
program order.  This bench runs the same analysis over the synthetic
suite and reports the per-trace pattern mix — the evidence that the
classifier has something to classify.
"""

from conftest import once

from repro.analysis.tracestats import analyze_trace
from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-motivation",)


CLASSES = ["constant_stride", "complex_stride", "irregular", "singleton"]


def collect(suite):
    rows = []
    for trace in suite:
        profile = analyze_trace(trace)
        shares = profile.class_shares()
        rows.append(
            [trace.name, profile.distinct_ips]
            + [shares.get(label, 0.0) for label in CLASSES]
            + [profile.dense_region_fraction]
        )
    return rows


def test_motivation_pattern_mix(benchmark, mem_suite, emit):
    rows = once(benchmark, lambda: collect(mem_suite))
    emit("motivation_section3", format_table(
        ["trace", "IPs"] + CLASSES + ["dense 2KB regions"], rows,
        title="Section III: per-IP behaviour mix of the suite",
    ))
    by_name = {row[0]: row for row in rows}

    # The paper's worked examples hold on their synthetic stand-ins:
    assert by_name["bwaves_like"][2] > 0.6       # IP_A: constant stride 3
    assert by_name["wrf_like"][3] > 0.6          # 3,3,4: complex stride
    assert by_name["omnetpp_like"][4] > 0.4      # pointer chasing
    assert by_name["gcc_like"][6] > 0.7          # dense global streams
    assert by_name["cactu_like"][1] > 256        # IP-table-defeating count

    # Every share vector is a valid distribution.
    for row in rows:
        assert abs(sum(row[2:6]) - 1.0) < 1e-6
