"""DRAM bandwidth cost of prefetching (Section VI-B2).

Paper: IPCP buys its 45.1% speedup with only 16.1% extra DRAM traffic,
while SPP+Perceptron+DSPatch and MLOP demand ~28% and T-SKID ~38%
(with a 692% outlier on mcf).  The ordering — IPCP cheapest per unit of
speedup — is the claim we assert.
"""

from conftest import once

from repro.stats import format_table
from repro.stats.metrics import dram_traffic_overhead, geometric_mean

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-dram-traffic",)


CONFIGS = ["ipcp", "spp_ppf_dspatch", "mlop", "tskid"]
PAPER_OVERHEAD = {"ipcp": 0.161, "spp_ppf_dspatch": 0.28,
                  "mlop": 0.28, "tskid": 0.38}


def collect(runner):
    table = {}
    for config in CONFIGS:
        overheads = []
        speedups = []
        for name in runner.traces:
            base = runner.result(name, "none")
            result = runner.result(name, config)
            overheads.append(dram_traffic_overhead(result, base))
            speedups.append(result.speedup_over(base))
        table[config] = (
            sum(overheads) / len(overheads),
            geometric_mean(speedups),
        )
    return table


def test_dram_traffic_overhead(benchmark, runner, emit):
    table = once(benchmark, lambda: collect(runner))
    rows = []
    for config, (overhead, speedup) in table.items():
        gain = speedup - 1.0
        efficiency = gain / overhead if overhead > 0 else float("inf")
        rows.append([config, overhead, speedup,
                     f"paper: {PAPER_OVERHEAD[config]:.0%}"])
    emit("dram_traffic", format_table(
        ["combination", "DRAM overhead", "mean speedup", "paper overhead"],
        rows, title="DRAM traffic cost of prefetching",
    ))
    overheads = {config: row[0] for config, row in table.items()}
    speedups = {config: row[1] for config, row in table.items()}

    # IPCP's traffic overhead is modest in absolute terms (paper: 16.1%).
    assert overheads["ipcp"] < 0.35
    # Its speedup-per-traffic beats the aggressive combinations.  (Our
    # T-SKID-lite is more conservative than the real one — paper has it
    # at 38% overhead, ours barely prefetches beyond sure things — so it
    # is excluded from the efficiency comparison; see EXPERIMENTS.md.)
    def efficiency(config):
        overhead = max(overheads[config], 1e-3)
        return (speedups[config] - 1.0) / overhead

    assert efficiency("ipcp") >= efficiency("spp_ppf_dspatch")
    assert efficiency("ipcp") >= efficiency("mlop")
    # And IPCP delivers the largest absolute speedup of the pack.
    assert speedups["ipcp"] >= max(speedups.values()) - 1e-9
