"""Fig. 9: reduction in demand MPKI at L1/L2/LLC for each combination."""

from conftest import once

from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig9-mpki",)


CONFIGS = ["ipcp", "spp_ppf_dspatch", "mlop", "bingo", "tskid"]


def collect(runner):
    rows = []
    totals = {config: [0.0, 0.0] for config in CONFIGS}  # [base, with]
    for name in runner.traces:
        base = runner.result(name, "none")
        row = [name, base.mpki("l1")]
        for config in CONFIGS:
            result = runner.result(name, config)
            row.append(result.mpki("l1"))
            totals[config][0] += base.mpki("l1")
            totals[config][1] += result.mpki("l1")
        rows.append(row)
    return rows, totals


def test_fig9_mpki_reduction(benchmark, runner, emit):
    rows, totals = once(benchmark, lambda: collect(runner))
    emit("fig9_mpki_reduction", format_table(
        ["trace", "no-pf L1 MPKI"] + [f"{c} L1 MPKI" for c in CONFIGS],
        rows,
        title="Fig. 9: demand MPKI with multi-level prefetching",
    ))
    # Every combination must reduce aggregate L1 demand MPKI, and IPCP
    # must be among the strongest reducers.
    reductions = {
        config: 1 - with_pf / base
        for config, (base, with_pf) in totals.items()
    }
    assert all(value > 0 for value in reductions.values())
    assert reductions["ipcp"] >= max(reductions.values()) - 0.10
    assert reductions["ipcp"] > 0.3
