"""Ablation benches for the design choices DESIGN.md calls out:
coordinated throttling, the RR filter size, and NL gating.
"""

import pytest

from conftest import once

from repro.core import IpcpConfig, IpcpL1, IpcpL2
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean
from repro.workloads import spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-gs-degree", "abl-nl-gate", "abl-rr-filter", "abl-throttling")


TRACES = ["lbm_like", "bwaves_like", "wrf_like", "omnetpp_like"]
SCALE = 0.4


@pytest.fixture(scope="module")
def traces():
    return [spec_trace(name, SCALE) for name in TRACES]


def run_config(traces, config):
    speedups = []
    dram_overheads = []
    for trace in traces:
        base = simulate(trace)
        result = simulate(trace, l1_prefetcher=IpcpL1(config),
                          l2_prefetcher=IpcpL2())
        speedups.append(result.speedup_over(base))
        if base.dram_bytes:
            dram_overheads.append(result.dram_bytes / base.dram_bytes - 1)
    return geometric_mean(speedups), sum(dram_overheads) / len(dram_overheads)


def test_ablation_throttling(benchmark, traces, emit):
    def sweep():
        return {
            "throttling on (paper)": run_config(traces, IpcpConfig()),
            "throttling off": run_config(
                traces, IpcpConfig(throttling=False)),
        }

    results = once(benchmark, sweep)
    rows = [[name, sp, ov] for name, (sp, ov) in results.items()]
    emit("ablation_throttling", format_table(
        ["variant", "mean speedup", "DRAM overhead"], rows,
        title="Ablation: coordinated per-class throttling",
    ))
    on_speedup, on_overhead = results["throttling on (paper)"]
    off_speedup, off_overhead = results["throttling off"]
    # Throttling must not cost performance while containing traffic.
    assert on_speedup >= off_speedup - 0.03
    assert on_overhead <= off_overhead + 0.05


def test_ablation_rr_filter_size(benchmark, traces, emit):
    def sweep():
        return {
            f"rr={entries}": run_config(
                traces, IpcpConfig(rr_entries=entries))
            for entries in (8, 32, 128)
        }

    results = once(benchmark, sweep)
    rows = [[name, sp, ov] for name, (sp, ov) in results.items()]
    emit("ablation_rr_filter", format_table(
        ["variant", "mean speedup", "DRAM overhead"], rows,
        title="Ablation: RR filter size (paper uses 32 entries)",
    ))
    # The 32-entry design point is within noise of the best.
    speedups = {name: sp for name, (sp, _) in results.items()}
    assert speedups["rr=32"] >= max(speedups.values()) - 0.05


def test_ablation_nl_threshold(benchmark, traces, emit):
    def sweep():
        return {
            f"nl_mpki<{threshold}": run_config(
                traces, IpcpConfig(nl_mpki_threshold=threshold))
            for threshold in (0.0, 50.0, 1000.0)
        }

    results = once(benchmark, sweep)
    rows = [[name, sp, ov] for name, (sp, ov) in results.items()]
    emit("ablation_nl_threshold", format_table(
        ["variant", "mean speedup", "DRAM overhead"], rows,
        title="Ablation: tentative-NL MPKI gate (paper threshold: 50)",
    ))
    gated = results["nl_mpki<50.0"]
    always_on = results["nl_mpki<1000.0"]
    # The MPKI gate contains traffic versus always-on NL.
    assert gated[1] <= always_on[1] + 0.02
    # And costs little performance versus either extreme.
    speedups = {name: sp for name, (sp, _) in results.items()}
    assert speedups["nl_mpki<50.0"] >= max(speedups.values()) - 0.05


def test_ablation_gs_degree(benchmark, emit):
    """The paper defaults GS to degree 6 — "once an IP becomes GS ...
    more than 75% of the cache blocks will be accessed within that
    region" justifies the aggression.  Sweep it on streaming traces."""
    streams = [spec_trace(name, SCALE) for name in
               ("lbm_like", "gcc_like", "fotonik_like")]

    def sweep():
        out = {}
        for degree in (2, 4, 6, 8):
            speedups = []
            for trace in streams:
                base = simulate(trace)
                result = simulate(
                    trace,
                    l1_prefetcher=IpcpL1(IpcpConfig(gs_degree=degree)),
                    l2_prefetcher=IpcpL2(),
                )
                speedups.append(result.speedup_over(base))
            out[degree] = geometric_mean(speedups)
        return out

    results = once(benchmark, sweep)
    rows = [[f"gs degree {d}", v] for d, v in results.items()]
    emit("ablation_gs_degree", format_table(
        ["variant", "mean speedup (streaming traces)"], rows,
        title="Ablation: GS prefetch degree (paper default: 6, justified "
              "by dense-region semantics)",
    ))
    # Aggressive GS pays on streams: degree 6 beats a timid degree 2.
    assert results[6] > results[2]
    # And the default sits at or near the sweep's best.
    assert results[6] >= max(results.values()) - 0.05
