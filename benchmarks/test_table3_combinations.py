"""Table III: the multi-level prefetching combinations and their storage.

Regenerates the combination list with each configuration's per-level
prefetchers and storage budget, and checks the paper's headline storage
ordering: IPCP needs ~895 B while the competitors need 8-58 KB — a
30x-50x gap against the top performers.
"""

from conftest import once

from repro.prefetchers import make_prefetcher
from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("table3-storage-gap",)


COMBINATIONS = {
    "spp_ppf_dspatch": "~32 KB L2 + 0.6 KB L1",
    "mlop": "~8 KB L1",
    "bingo": "~48 KB L1",
    "tskid": "~58 KB",
    "ipcp": "895 B",
}


def build_all():
    built = {}
    for name in COMBINATIONS:
        config = make_prefetcher(name)
        built[name] = {
            level: factory() for level, factory in config.items()
        }
    return built


def test_table3_combinations(benchmark, emit):
    built = once(benchmark, build_all)
    rows = []
    storage = {}
    for name, levels in built.items():
        bits = sum(pf.storage_bits for pf in levels.values())
        storage[name] = bits
        layout = ", ".join(
            f"{pf.name}@{level.upper()}" for level, pf in levels.items()
        )
        rows.append([name, layout, f"{bits / 8 / 1024:.2f} KB",
                     COMBINATIONS[name]])
    emit("table3_combinations", format_table(
        ["combination", "prefetchers", "measured storage", "paper"],
        rows, title="Table III: multi-level prefetching combinations",
    ))

    ipcp_bits = storage["ipcp"]
    assert ipcp_bits <= 895 * 8
    # The paper's 30x-50x storage claim against the top spatial rivals.
    assert storage["bingo"] / ipcp_bits > 30
    assert storage["tskid"] / ipcp_bits > 30
    assert storage["spp_ppf_dspatch"] / ipcp_bits > 10
    assert storage["mlop"] / ipcp_bits > 5
