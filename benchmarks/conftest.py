"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment through a session-scoped memoizing runner (so a full
``pytest benchmarks/`` session simulates each (trace, config) cell only
once), prints the same rows/series the paper reports — with the paper's
reported value alongside ours — and writes the rendered table to
``benchmarks/out/``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import ExperimentRunner
from repro.workloads import memory_intensive_suite, full_suite

SCALE = 0.5  # trace-length scale used across the benchmark session
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def mem_suite():
    """The memory-intensive suite (analogue of the paper's 46 traces)."""
    return memory_intensive_suite(scale=SCALE)


@pytest.fixture(scope="session")
def whole_suite():
    """The full suite (analogue of the whole SPEC CPU 2017 collection)."""
    return full_suite(scale=SCALE)


@pytest.fixture(scope="session")
def runner(mem_suite):
    """Memoizing runner over the memory-intensive suite."""
    return ExperimentRunner(mem_suite)


@pytest.fixture(scope="session")
def full_runner(whole_suite):
    """Memoizing runner over the full suite."""
    return ExperimentRunner(whole_suite)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _emit


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
