"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment through a session-scoped runner backed by a persistent
content-addressed result cache (so a full ``pytest benchmarks/``
session simulates each (trace, config) cell only once — and a repeated
session simulates nothing at all), prints the same rows/series the
paper reports — with the paper's reported value alongside ours — and
writes the rendered table to ``benchmarks/out/``.

Environment knobs:

* ``REPRO_BENCH_JOBS`` — worker processes for simulation cells
  (default 1);
* ``REPRO_BENCH_CACHE`` — cache directory (default
  ``benchmarks/.simcache``; set to ``off`` to disable persistence).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import ExperimentRunner
from repro.runner import ResultCache, SimulationRunner
from repro.workloads import memory_intensive_suite, full_suite

SCALE = 0.5  # trace-length scale used across the benchmark session
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE",
    os.path.join(os.path.dirname(__file__), ".simcache"),
)
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def sim_cache():
    """The persistent result cache shared by every benchmark script."""
    if CACHE_DIR == "off":
        return None
    return ResultCache(CACHE_DIR)


@pytest.fixture(scope="session")
def sim_backend(sim_cache):
    """One SimulationRunner (pool + cache) for the whole session."""
    return SimulationRunner(jobs=JOBS, cache=sim_cache)


@pytest.fixture(scope="session")
def mem_suite():
    """The memory-intensive suite (analogue of the paper's 46 traces)."""
    return memory_intensive_suite(scale=SCALE)


@pytest.fixture(scope="session")
def whole_suite():
    """The full suite (analogue of the whole SPEC CPU 2017 collection)."""
    return full_suite(scale=SCALE)


@pytest.fixture(scope="session")
def runner(mem_suite, sim_backend):
    """Memoizing runner over the memory-intensive suite."""
    return ExperimentRunner(mem_suite, runner=sim_backend)


@pytest.fixture(scope="session")
def full_runner(whole_suite, sim_backend):
    """Memoizing runner over the full suite."""
    return ExperimentRunner(whole_suite, runner=sim_backend)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _emit


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
