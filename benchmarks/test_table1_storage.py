"""Table I: IPCP hardware storage overhead (740 B at L1 + 155 B at L2).

This is exact bookkeeping, so unlike the simulation benchmarks the
numbers must match the paper bit-for-bit.
"""

from conftest import once

from repro.core import ipcp_storage_report
from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("table1-storage",)



def test_table1_storage(benchmark, emit):
    report = once(benchmark, ipcp_storage_report)
    rows = [
        ["IPCP at L1 (tables)", report.l1_table_bits, "5800 bits", "exact"],
        ["IPCP at L1 (others)", report.l1_other_bits, "113 bits", "exact"],
        ["IPCP at L1 total", f"{report.l1_bytes} B", "740 B", "exact"],
        ["IPCP at L2 total", f"{report.l2_bytes} B", "155 B", "exact"],
        ["Framework total", f"{report.total_bytes} B", "895 B", "exact"],
    ]
    emit("table1_storage", format_table(
        ["structure", "measured", "paper", "status"], rows,
        title="Table I: IPCP storage overhead",
    ))
    assert report.l1_table_bits == 5800
    assert report.l1_other_bits == 113
    assert report.l1_bytes == 740
    assert report.l2_bytes == 155
    assert report.total_bytes == 895
