"""Fig. 10 + Table IV: demand misses covered by IPCP at L1, L2 and LLC.

Paper: IPCP covers 60% / 79.5% / 83% of demand misses at L1 / L2 / LLC,
with poor coverage on the irregular mcf/omnetpp traces and ~zero on
cactusBSSN.  Table IV adds prefetch accuracy (0.80 at L1 for IPCP).
"""

from conftest import once

from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig10-coverage",)



def miss_reduction(result, baseline, level):
    """The paper's coverage: demand-miss reduction vs no prefetching."""
    base = getattr(baseline, level).demand_misses
    if not base:
        return 0.0
    return max(0.0, 1.0 - getattr(result, level).demand_misses / base)


def collect(runner):
    rows = []
    for name in runner.traces:
        result = runner.result(name, "ipcp")
        baseline = runner.result(name, "none")
        rows.append([
            name,
            miss_reduction(result, baseline, "l1"),
            miss_reduction(result, baseline, "l2"),
            miss_reduction(result, baseline, "llc"),
            result.l1.accuracy,
        ])
    return rows


def test_fig10_ipcp_coverage(benchmark, runner, emit):
    rows = once(benchmark, lambda: collect(runner))
    paper_row = ["paper (46 traces)", 0.60, 0.795, 0.83, 0.80]
    emit("fig10_ipcp_coverage", format_table(
        ["trace", "L1 cov", "L2 cov", "LLC cov", "L1 acc"],
        rows + [paper_row],
        title="Fig. 10 / Table IV: IPCP coverage per level + L1 accuracy",
    ))
    by_name = {row[0]: row for row in rows}

    # Regular/streaming traces are well covered at the L1...
    for name in ("bwaves_like", "fotonik_like", "gcc_like", "mcf_r_like"):
        assert by_name[name][1] > 0.5, name
    # ...irregular ones are not (paper: mcf/omnetpp trend).
    assert by_name["omnetpp_like"][1] < 0.2
    # cactusBSSN-like IP-table thrash: near-zero coverage.
    assert by_name["cactu_like"][1] < 0.2

    # Aggregate accuracy is high (paper: 0.80 at L1), computed over
    # traces where IPCP actually prefetched.
    active = [row for row in rows if row[4] > 0]
    mean_accuracy = sum(row[4] for row in active) / len(active)
    assert mean_accuracy > 0.6
