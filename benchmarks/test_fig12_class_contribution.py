"""Fig. 12: contribution of each IPCP class to L1 prefetch coverage.

Paper: on average GS contributes 30% and CS 46.7% of the covered
misses; CPLX and NL mop up complex/irregular strides (mcf), streaming
traces lean on GS, and when GS misses a stream CS picks it up.
"""

from conftest import once

from repro.stats import class_contributions, format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig12-class-mix",)


CLASSES = ["cs", "cplx", "gs", "nl"]


def collect(runner):
    rows = []
    for name in runner.traces:
        contributions = class_contributions(runner.result(name, "ipcp"))
        rows.append([name] + [contributions.get(c, 0.0) for c in CLASSES])
    return rows


def test_fig12_class_contribution(benchmark, runner, emit):
    rows = once(benchmark, lambda: collect(runner))
    mean_row = ["mean"] + [
        sum(row[i] for row in rows) / len(rows)
        for i in range(1, len(CLASSES) + 1)
    ]
    paper_row = ["paper mean", 0.467, "-", 0.30, "-"]
    emit("fig12_class_contribution", format_table(
        ["trace"] + CLASSES, rows + [mean_row, paper_row],
        title="Fig. 12: per-class share of IPCP's L1 coverage",
    ))
    by_name = {row[0]: row for row in rows}
    shares = dict(zip(CLASSES, mean_row[1:]))

    # Pattern -> class attribution must match the construction:
    assert by_name["bwaves_like"][1] > 0.5       # constant stride -> CS
    assert by_name["wrf_like"][2] > 0.5          # 3,3,4 -> CPLX
    assert by_name["lbm_like"][3] > 0.5          # streaming -> GS
    assert by_name["gcc_like"][3] > 0.5          # dense regions -> GS

    # CS and GS are the two big contributors on average (paper's 46.7%
    # and 30%).
    assert shares["cs"] > 0.15
    assert shares["gs"] > 0.15
    # Every trace's shares sum to <= 1.
    for row in rows:
        assert sum(row[1:]) <= 1.0 + 1e-9
