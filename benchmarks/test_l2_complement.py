"""Section VI-B1: a strong L1 prefetcher makes L2 prefetching marginal.

The paper's "surprising and counter-intuitive" observation: with IPCP
at the L1, sweeping every L2 prefetcher (SPP+Perceptron+DSPatch, BOP,
VLDP, MLOP, IP-stride, Bingo) adds less than 1.7%, with the SPP stack
the best of them — which motivates the metadata-driven IPCP-L2 instead
and frames future work (i): an L2 prefetcher that *complements* a
strong L1.
"""

from conftest import once

from repro.core import IpcpL1, IpcpL2
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.bop import BopPrefetcher
from repro.prefetchers.composite import spp_ppf_dspatch
from repro.prefetchers.ip_stride import IpStridePrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.vldp import VldpPrefetcher
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-l2-complement",)


L2_CHOICES = {
    "none": lambda: None,
    "spp_ppf_dspatch": spp_ppf_dspatch,
    "bop": BopPrefetcher,
    "vldp": VldpPrefetcher,
    "mlop": MlopPrefetcher,
    "ip_stride": IpStridePrefetcher,
    "bingo": BingoPrefetcher,
    "ipcp_l2 (metadata)": IpcpL2,
}


def sweep(mem_suite):
    means = {}
    for label, factory in L2_CHOICES.items():
        speedups = []
        for trace in mem_suite:
            base = simulate(trace)
            result = simulate(trace, l1_prefetcher=IpcpL1(),
                              l2_prefetcher=factory())
            speedups.append(result.speedup_over(base))
        means[label] = geometric_mean(speedups)
    return means


def test_l2_prefetchers_on_top_of_ipcp_l1(benchmark, mem_suite, emit):
    means = once(benchmark, lambda: sweep(mem_suite))
    baseline = means["none"]
    rows = [[label, value, value - baseline]
            for label, value in means.items()]
    emit("l2_complement", format_table(
        ["L2 prefetcher (IPCP at L1)", "mean speedup", "delta vs no-L2"],
        rows,
        title="Section VI-B1: utility of L2 prefetchers under a strong "
              "L1 (paper: every generic L2 adds <1.7%)",
    ))
    generic = [label for label in L2_CHOICES
               if label not in ("none", "ipcp_l2 (metadata)")]
    # Generic L2 prefetchers add little on top of IPCP-L1 (and never
    # wreck it).
    for label in generic:
        assert abs(means[label] - baseline) < 0.12, label
    # The metadata-driven IPCP-L2 is the best L2 companion.
    assert means["ipcp_l2 (metadata)"] >= max(means.values()) - 0.02
    assert means["ipcp_l2 (metadata)"] > baseline
