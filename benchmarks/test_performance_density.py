"""The abstract's closing claim: "IPCP outperforms the already
high-performing state-of-the-art prefetchers like SPP with PPF and
Bingo by demanding 30X to 50X less storage."

Measured as *performance density* (speedup gain per KB of prefetcher
storage), the paper's framing for Bingo vs SMS ("performance density
(speedup/KB)") applied across the whole field.
"""

from conftest import once

from repro.prefetchers import make_prefetcher
from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-density",)


CONFIGS = ["ipcp", "spp_ppf_dspatch", "mlop", "bingo", "tskid"]


def collect(runner):
    rows = {}
    for config in CONFIGS:
        levels = {lvl: f() for lvl, f in make_prefetcher(config).items()}
        kb = sum(pf.storage_bits for pf in levels.values()) / 8 / 1024
        mean = runner.mean_speedup(config)
        density = (mean - 1.0) / kb if kb > 0 else float("inf")
        rows[config] = (mean, kb, density)
    return rows


def test_performance_density(benchmark, runner, emit):
    table = once(benchmark, lambda: collect(runner))
    rows = [[config, mean, f"{kb:.2f} KB", density]
            for config, (mean, kb, density) in table.items()]
    emit("performance_density", format_table(
        ["combination", "mean speedup", "storage", "gain per KB"],
        rows,
        title="Abstract claim: IPCP's performance per byte "
              "(paper: wins with 30-50x less storage)",
    ))
    densities = {config: row[2] for config, row in table.items()}
    storages = {config: row[1] for config, row in table.items()}
    speedups = {config: row[0] for config, row in table.items()}

    # IPCP both wins outright and does it with the least storage...
    assert speedups["ipcp"] >= max(speedups.values()) - 1e-9
    assert storages["ipcp"] <= min(storages.values())
    # ...with the paper's 30-50x storage gap against the heavyweight
    # rivals (our SPP-lite tables are smaller than the real 32 KB stack,
    # so that ratio lands lower)...
    assert storages["bingo"] / storages["ipcp"] > 30
    assert storages["tskid"] / storages["ipcp"] > 30
    assert storages["spp_ppf_dspatch"] / storages["ipcp"] > 8
    # ...and an order of magnitude better gain-per-KB than anyone.
    best_rival_density = max(v for k, v in densities.items() if k != "ipcp")
    assert densities["ipcp"] > 10 * best_rival_density
