"""Fig. 8: multi-level prefetching speedups (the headline result).

Paper numbers: on memory-intensive traces IPCP gains 45.1% on average
with the next three combinations at >= 42.5%; on the full SPEC CPU 2017
suite IPCP gains 22% vs 18.2-18.8% for the others.  Our substrate is a
simplified simulator over synthetic traces so the absolute numbers
differ; the *ordering* — IPCP first, everything else behind — must
hold, with DOL further back (Section V-A).
"""

from conftest import once

from repro.analysis import ExperimentRunner
from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig8-full-suite", "fig8-multilevel")


CONFIGS = ["ipcp", "spp_ppf_dspatch", "mlop", "bingo", "tskid", "dol"]

PAPER_MEM_INTENSIVE = {
    "ipcp": 1.451, "spp_ppf_dspatch": 1.425, "mlop": 1.425,
    "bingo": 1.425, "tskid": 1.425, "dol": None,
}


def test_fig8_memory_intensive(benchmark, runner, emit):
    rows = once(benchmark, lambda: runner.speedup_table(CONFIGS))
    paper_row = ["paper (46 traces)"] + [
        PAPER_MEM_INTENSIVE[c] or "-" for c in CONFIGS
    ]
    emit("fig8_multilevel_speedup", format_table(
        ["trace"] + CONFIGS, rows + [paper_row],
        title="Fig. 8: multi-level prefetching, memory-intensive traces",
    ))
    means = dict(zip(CONFIGS, rows[-1][1:]))
    best_rival = max(v for k, v in means.items() if k != "ipcp")
    assert means["ipcp"] >= best_rival          # IPCP wins
    assert means["ipcp"] > 1.2                  # and the win is material
    assert means["dol"] <= means["ipcp"] - 0.05  # DOL trails IPCP


def test_fig8_full_suite(benchmark, full_runner, emit):
    configs = ["ipcp", "mlop", "tskid"]
    rows = once(benchmark, lambda: full_runner.speedup_table(configs))
    emit("fig8_full_suite", format_table(
        ["trace"] + configs, rows,
        title="Fig. 8 (companion): full-suite averages "
              "(paper: IPCP 1.22 vs rivals 1.182-1.188)",
    ))
    means = dict(zip(configs, rows[-1][1:]))
    # Full-suite average is diluted by non-memory-intensive traces but
    # IPCP still leads.
    assert means["ipcp"] >= max(means.values()) - 1e-9
    assert 1.05 < means["ipcp"] < 1.6
