"""Section VI-D's differentiating mix: four mcf traces together.

"A mix containing 605.mcf-1536B, 605.mcf-1554B, 605.mcf-1644B, and
605.mcf-994 is one such mix where the competing prefetchers lose
performance in the scale of 50 to 70%, whereas IPCP degrades by 9%
thanks to coordinated throttling."

We build the analogous 4-core mix from our mcf-family traces (regular,
irregular, chase-heavy) and check the robustness ordering: IPCP's loss
is small and strictly smaller than the unthrottled rivals'.
"""

from conftest import once

from repro.core import IpcpL1, IpcpL2
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.sim.multicore import simulate_mix
from repro.stats import format_table, normalized_weighted_speedup
from repro.workloads import spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-pathological-mix",)


CONFIGS = {
    "ipcp": {"l1": IpcpL1, "l2": IpcpL2},
    "mlop": {"l1": MlopPrefetcher,
             "l2": lambda: NextLinePrefetcher(degree=1)},
    "bingo": {"l1": BingoPrefetcher,
              "l2": lambda: NextLinePrefetcher(degree=1)},
}


def run_mcf_mix():
    traces = [
        spec_trace("mcf_r_like", 0.25),
        spec_trace("mcf_i_like", 0.25),
        spec_trace("mcf_994_like", 0.25),
        spec_trace("omnetpp_like", 0.25),
    ]
    alone: dict[str, float] = {}
    base = simulate_mix(traces, warmup=2_000, roi=8_000, alone_ipc=alone)
    results = {}
    for config, factories in CONFIGS.items():
        mix = simulate_mix(
            traces,
            l1_factory=factories["l1"],
            l2_factory=factories.get("l2"),
            warmup=2_000, roi=8_000, alone_ipc=alone,
        )
        results[config] = normalized_weighted_speedup(mix, base)
    return results


def test_pathological_mcf_mix(benchmark, emit):
    results = once(benchmark, run_mcf_mix)
    rows = [[config, value] for config, value in results.items()]
    emit("pathological_mix", format_table(
        ["config", "normalized weighted speedup"], rows,
        title="Section VI-D: the all-mcf mix (paper: rivals lose 50-70%, "
              "IPCP only 9%)",
    ))
    # IPCP's throttling keeps the damage small on the hardest mix...
    assert results["ipcp"] > 0.9
    # ...and strictly contains it better than every unthrottled rival.
    for config, value in results.items():
        if config != "ipcp":
            assert results["ipcp"] >= value - 0.02, config
