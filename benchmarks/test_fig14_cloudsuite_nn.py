"""Fig. 14: CloudSuite (a) and CNN/RNN (b) speedups.

Paper: spatial prefetchers barely move server workloads (all
prefetchers cluster near 1.0x, Classification defeats everyone), while
the streaming neural-network kernels favour IPCP, which wins the
category.
"""

from conftest import once

from repro.analysis import ExperimentRunner
from repro.core import IpcpL1, IpcpL2
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.sim.multicore import simulate_mix
from repro.stats import format_table, geometric_mean, \
    normalized_weighted_speedup
from repro.workloads import cloudsuite_suite, neural_suite
from repro.workloads.cloudsuite import CLOUDSUITE_BENCHMARKS, \
    cloudsuite_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig14a-cloudsuite", "fig14b-neural")


CONFIGS = ["ipcp", "spp_ppf_dspatch", "mlop", "bingo", "tskid"]

MC_CONFIGS = {
    "ipcp": {"l1": IpcpL1, "l2": IpcpL2},
    "mlop": {"l1": MlopPrefetcher,
             "l2": lambda: NextLinePrefetcher(degree=1)},
    "bingo": {"l1": BingoPrefetcher,
              "l2": lambda: NextLinePrefetcher(degree=1)},
}


def test_fig14a_cloudsuite(benchmark, emit):
    """The paper evaluates CloudSuite as FOUR-CORE mixes; we run each
    server workload on all four cores and compare normalized weighted
    speedups."""

    def run():
        rows = []
        gains = {config: [] for config in MC_CONFIGS}
        alone: dict[str, float] = {}
        for name in CLOUDSUITE_BENCHMARKS:
            traces = [cloudsuite_trace(name, 0.4) for _ in range(4)]
            # Warm-up must cover each trace's footprint-warming sweep
            # (a GS-friendly stream) so the ROI measures steady-state
            # server behaviour, not initialisation.
            warmup = max(2_000, len(traces[0]) // 3)
            base = simulate_mix(traces, warmup=warmup, roi=6_000,
                                alone_ipc=alone)
            row = [name]
            for config, factories in MC_CONFIGS.items():
                result = simulate_mix(
                    traces,
                    l1_factory=factories["l1"],
                    l2_factory=factories.get("l2"),
                    warmup=warmup, roi=6_000, alone_ipc=alone,
                )
                nws = normalized_weighted_speedup(result, base)
                row.append(nws)
                gains[config].append(nws)
            rows.append(row)
        mean_row = ["geomean"] + [
            geometric_mean(gains[config]) for config in MC_CONFIGS
        ]
        return rows + [mean_row], gains

    rows, gains = once(benchmark, run)
    emit("fig14a_cloudsuite", format_table(
        ["4-core mix"] + list(MC_CONFIGS), rows,
        title="Fig. 14a: CloudSuite-like 4-core mixes "
              "(paper: all prefetchers ~flat, geomean ~1.0-1.06)",
    ))
    means = dict(zip(MC_CONFIGS, rows[-1][1:]))
    # Spatial prefetching does not help server workloads; IPCP's
    # coordinated throttling keeps it pinned near 1.0 while the
    # unthrottled aggressive-lite rivals bleed DRAM bandwidth on the
    # compulsory-miss-heavy mixes (see EXPERIMENTS.md deviations).
    assert 0.9 < means["ipcp"] < 1.25
    assert min(gains["ipcp"]) > 0.85
    for name, value in means.items():
        assert 0.7 < value < 1.25, name
    # Nobody turns a server mix into a win the way streams are won.
    assert max(means.values()) < 1.15


def test_fig14b_neural_networks(benchmark, emit):
    """Single-core sweep over all five combinations (the per-kernel
    bars of Fig. 14b)."""
    runner = ExperimentRunner(neural_suite(scale=0.4))
    rows = once(benchmark, lambda: runner.speedup_table(CONFIGS))
    emit("fig14b_neural", format_table(
        ["trace"] + CONFIGS, rows,
        title="Fig. 14b: CNN/RNN-like speedups (paper: IPCP wins; "
              "streaming-friendly)",
    ))
    means = dict(zip(CONFIGS, rows[-1][1:]))
    # Streaming NN kernels: IPCP leads the pack and gains are real.
    assert means["ipcp"] >= max(means.values()) - 0.02
    assert means["ipcp"] > 1.15


def test_fig14b_neural_multicore(benchmark, emit):
    """The paper's NN numbers come from multicore runs; a 4-core
    homogeneous check on three representative kernels."""
    from repro.workloads.neural import neural_trace

    def run():
        rows = []
        gains = {config: [] for config in MC_CONFIGS}
        alone: dict[str, float] = {}
        for name in ("vgg19_like", "lstm_like", "resnet50_like"):
            traces = [neural_trace(name, 0.25) for _ in range(4)]
            base = simulate_mix(traces, warmup=2_000, roi=6_000,
                                alone_ipc=alone)
            row = [name]
            for config, factories in MC_CONFIGS.items():
                result = simulate_mix(
                    traces,
                    l1_factory=factories["l1"],
                    l2_factory=factories.get("l2"),
                    warmup=2_000, roi=6_000, alone_ipc=alone,
                )
                nws = normalized_weighted_speedup(result, base)
                row.append(nws)
                gains[config].append(nws)
            rows.append(row)
        mean_row = ["geomean"] + [
            geometric_mean(gains[config]) for config in MC_CONFIGS
        ]
        return rows + [mean_row]

    rows = once(benchmark, run)
    emit("fig14b_neural_multicore", format_table(
        ["4-core mix"] + list(MC_CONFIGS), rows,
        title="Fig. 14b (multicore): CNN/RNN 4-core mixes",
    ))
    means = dict(zip(MC_CONFIGS, rows[-1][1:]))
    assert means["ipcp"] >= max(means.values()) - 0.02
    assert means["ipcp"] > 1.02
