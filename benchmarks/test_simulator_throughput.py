"""Simulator throughput guard.

Not a paper artifact — a regression guard for the repository itself:
the whole benchmark suite only stays runnable if the simulator keeps
processing on the order of 10^5 instructions per second in pure
Python.  This bench measures records/second several ways — raw scalar
baseline, scalar with IPCP, the batched columnar engine on the same
workload, both engines on a compute-dense trace, cached replay through
the persistent result cache, and a 2-worker parallel fan-out — and
fails if raw throughput collapses by an order of magnitude, the cache
stops being a shortcut, or the batched engine loses its edge.  All
rates land in the pytest-benchmark JSON (``extra_info``) so
BENCH_*.json tracks the speedup trajectory over time.

The batched engine's headline gate runs on the compute-dense trace
(<1% memory events): suite workloads carry 14-20% memory events, and
the serialized cache/classifier updates on that event path bound any
engine's overall speedup to a few x (Amdahl); the dense mix isolates
the gap-kernel win the engine exists for.  Both mixes are reported so
the trade-off stays visible (docs/engine.md).
"""

import os
import time

from repro.core import IpcpL1, IpcpL2
from repro.runner import ResultCache, SimulationRunner, levels_job
from repro.sim.batched import simulate_batched
from repro.sim.engine import simulate
from repro.workloads import compute_dense_trace, spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("bench-throughput",)



def measure(trace, reps=1, engine=simulate, levels=None, **kwargs):
    """Best-of-``reps`` records/second for one engine on one trace.

    ``levels`` is a zero-argument factory returning fresh
    (l1, l2, llc) prefetchers per repetition, so no run ever observes
    trained state.  Best-of (not mean) because the guard compares two
    engines on one noisy machine: minima track the code's cost, means
    track the neighbours'.
    """
    best = None
    for _ in range(reps):
        l1, l2, llc = levels() if levels is not None else (None, None, None)
        start = time.perf_counter()
        engine(trace, l1_prefetcher=l1, l2_prefetcher=l2,
               llc_prefetcher=llc, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return len(trace) / best


def measure_jobs(specs, total_records, jobs, cache=None):
    """Aggregate records/second resolving ``specs`` with ``jobs`` workers."""
    runner = SimulationRunner(jobs=jobs, cache=cache)
    start = time.perf_counter()
    runner.run(specs)
    elapsed = time.perf_counter() - start
    return total_records / elapsed


def ipcp_levels():
    """Fresh IPCP L1+L2 prefetchers (one pair per measured run)."""
    return IpcpL1(), IpcpL2(), None


def no_levels():
    return None, None, None


def test_simulator_throughput(benchmark, emit, tmp_path):
    trace = spec_trace("lbm_like", 0.5)
    dense = compute_dense_trace()

    # A >=4-trace suite for the parallel fan-out comparison (smaller
    # scale keeps the sequential leg of the comparison affordable).
    suite = [spec_trace(name, 0.25)
             for name in ("lbm_like", "bwaves_like", "fotonik_like",
                          "wrf_like")]
    suite_records = sum(len(t) for t in suite)
    suite_specs = [levels_job(t, "ipcp") for t in suite]

    cache = ResultCache(str(tmp_path / "simcache"))
    replay_spec = levels_job(trace, "ipcp")

    def run():
        rates = {
            "baseline": measure(trace, reps=3),
            "ipcp": measure(trace, reps=3, levels=ipcp_levels),
            "batched_baseline": measure(trace, reps=5,
                                        engine=simulate_batched),
            "batched_ipcp": measure(trace, reps=5, engine=simulate_batched,
                                    levels=ipcp_levels),
            "dense_baseline": measure(dense, reps=3),
            "dense_ipcp": measure(dense, reps=3, levels=ipcp_levels),
            "dense_batched_baseline": measure(dense, reps=5,
                                              engine=simulate_batched),
            "dense_batched_ipcp": measure(dense, reps=5,
                                          engine=simulate_batched,
                                          levels=ipcp_levels),
        }
        # Warm the cache once, then time a cold-process-equivalent
        # replay: the second resolution must be a pure cache hit.
        SimulationRunner(cache=cache).run([replay_spec])
        rates["cached_replay"] = measure_jobs(
            [replay_spec], len(trace), jobs=1, cache=cache
        )
        rates["parallel_1w"] = measure_jobs(suite_specs, suite_records, 1)
        rates["parallel_2w"] = measure_jobs(suite_specs, suite_records, 2)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rates"] = {k: round(v) for k, v in rates.items()}
    emit("simulator_throughput", "\n".join(
        [f"simulator throughput ({trace.name}, {len(trace)} records; "
         f"dense trace {len(dense)} records; "
         f"parallel suite {suite_records} records on "
         f"{os.cpu_count()} cpus)"]
        + [f"  {name}: {rate:,.0f} records/s" for name, rate in rates.items()]
    ))
    # Floors chosen ~10x below current performance: they catch
    # accidental quadratic behaviour, not machine variance.
    assert rates["baseline"] > 30_000
    assert rates["ipcp"] > 15_000
    # Prefetching costs simulation time but not more than ~5x.
    assert rates["ipcp"] > rates["baseline"] / 5
    # The batched engine must beat scalar on the suite workload (the
    # honest number: ~15% memory events bound it to a few x) ...
    assert rates["batched_baseline"] > rates["baseline"]
    assert rates["batched_ipcp"] > rates["ipcp"]
    # ... and by >=10x where gap arithmetic dominates (<1% events).
    assert rates["dense_batched_baseline"] >= 10 * rates["dense_baseline"]
    assert rates["dense_batched_ipcp"] > 4 * rates["dense_ipcp"]
    # A cache hit must beat re-simulating by a wide margin.
    assert rates["cached_replay"] > rates["ipcp"] * 5
    # Fan-out must pay for its process overhead where cores exist.
    if (os.cpu_count() or 1) >= 4:
        rate_4w = measure_jobs(suite_specs, suite_records, 4)
        benchmark.extra_info["rates"]["parallel_4w"] = round(rate_4w)
        assert rate_4w >= 2.0 * rates["parallel_1w"]
    if (os.cpu_count() or 1) >= 2:
        assert rates["parallel_2w"] > rates["parallel_1w"]
