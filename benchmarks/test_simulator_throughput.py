"""Simulator throughput guard.

Not a paper artifact — a regression guard for the repository itself:
the whole benchmark suite only stays runnable if the simulator keeps
processing on the order of 10^5 instructions per second in pure
Python.  This bench measures records/second with and without IPCP and
fails if throughput collapses by an order of magnitude.
"""

import time

from repro.core import IpcpL1, IpcpL2
from repro.sim.engine import simulate
from repro.workloads import spec_trace


def measure(trace, **kwargs):
    start = time.perf_counter()
    simulate(trace, **kwargs)
    elapsed = time.perf_counter() - start
    return len(trace) / elapsed


def test_simulator_throughput(benchmark, emit):
    trace = spec_trace("lbm_like", 0.5)

    def run():
        return {
            "baseline": measure(trace),
            "ipcp": measure(trace, l1_prefetcher=IpcpL1(),
                            l2_prefetcher=IpcpL2()),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("simulator_throughput", "\n".join(
        [f"simulator throughput ({trace.name}, {len(trace)} records)"]
        + [f"  {name}: {rate:,.0f} records/s" for name, rate in rates.items()]
    ))
    # Floors chosen ~10x below current performance: they catch
    # accidental quadratic behaviour, not machine variance.
    assert rates["baseline"] > 30_000
    assert rates["ipcp"] > 15_000
    # Prefetching costs simulation time but not more than ~5x.
    assert rates["ipcp"] > rates["baseline"] / 5
