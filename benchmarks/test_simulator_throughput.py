"""Simulator throughput guard.

Not a paper artifact — a regression guard for the repository itself:
the whole benchmark suite only stays runnable if the simulator keeps
processing on the order of 10^5 instructions per second in pure
Python.  This bench measures records/second four ways — raw baseline,
raw with IPCP, cached replay through the persistent result cache, and
a 2-worker parallel fan-out — and fails if raw throughput collapses by
an order of magnitude or the cache stops being a shortcut.  All rates
land in the pytest-benchmark JSON (``extra_info``) so BENCH_*.json
tracks the cached/parallel speedup trajectory over time.
"""

import os
import time

from repro.core import IpcpL1, IpcpL2
from repro.runner import ResultCache, SimulationRunner, levels_job
from repro.sim.engine import simulate
from repro.workloads import spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("bench-throughput",)



def measure(trace, **kwargs):
    start = time.perf_counter()
    simulate(trace, **kwargs)
    elapsed = time.perf_counter() - start
    return len(trace) / elapsed


def measure_jobs(specs, total_records, jobs, cache=None):
    """Aggregate records/second resolving ``specs`` with ``jobs`` workers."""
    runner = SimulationRunner(jobs=jobs, cache=cache)
    start = time.perf_counter()
    runner.run(specs)
    elapsed = time.perf_counter() - start
    return total_records / elapsed


def test_simulator_throughput(benchmark, emit, tmp_path):
    trace = spec_trace("lbm_like", 0.5)

    # A >=4-trace suite for the parallel fan-out comparison (smaller
    # scale keeps the sequential leg of the comparison affordable).
    suite = [spec_trace(name, 0.25)
             for name in ("lbm_like", "bwaves_like", "fotonik_like",
                          "wrf_like")]
    suite_records = sum(len(t) for t in suite)
    suite_specs = [levels_job(t, "ipcp") for t in suite]

    cache = ResultCache(str(tmp_path / "simcache"))
    replay_spec = levels_job(trace, "ipcp")

    def run():
        rates = {
            "baseline": measure(trace),
            "ipcp": measure(trace, l1_prefetcher=IpcpL1(),
                            l2_prefetcher=IpcpL2()),
        }
        # Warm the cache once, then time a cold-process-equivalent
        # replay: the second resolution must be a pure cache hit.
        SimulationRunner(cache=cache).run([replay_spec])
        rates["cached_replay"] = measure_jobs(
            [replay_spec], len(trace), jobs=1, cache=cache
        )
        rates["parallel_1w"] = measure_jobs(suite_specs, suite_records, 1)
        rates["parallel_2w"] = measure_jobs(suite_specs, suite_records, 2)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rates"] = {k: round(v) for k, v in rates.items()}
    emit("simulator_throughput", "\n".join(
        [f"simulator throughput ({trace.name}, {len(trace)} records; "
         f"parallel suite {suite_records} records on "
         f"{os.cpu_count()} cpus)"]
        + [f"  {name}: {rate:,.0f} records/s" for name, rate in rates.items()]
    ))
    # Floors chosen ~10x below current performance: they catch
    # accidental quadratic behaviour, not machine variance.
    assert rates["baseline"] > 30_000
    assert rates["ipcp"] > 15_000
    # Prefetching costs simulation time but not more than ~5x.
    assert rates["ipcp"] > rates["baseline"] / 5
    # A cache hit must beat re-simulating by a wide margin.
    assert rates["cached_replay"] > rates["ipcp"] * 5
    # Fan-out must pay for its process overhead where cores exist.
    if (os.cpu_count() or 1) >= 4:
        rate_4w = measure_jobs(suite_specs, suite_records, 4)
        benchmark.extra_info["rates"]["parallel_4w"] = round(rate_4w)
        assert rate_4w >= 2.0 * rates["parallel_1w"]
    if (os.cpu_count() or 1) >= 2:
        assert rates["parallel_2w"] > rates["parallel_1w"]
