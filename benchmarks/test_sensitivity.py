"""Section VI-C sensitivity studies: replacement policy, cache sizes,
DRAM bandwidth, PQ/MSHR budgets and prefetch-table sizes.

Paper findings encoded as assertions:
* IPCP is resilient to LLC replacement policies (< ~1% swing; we allow
  a wider band on short traces);
* cache-size combinations move IPCP by at most ~1%; small LLCs lower
  absolute performance but not the relative win;
* low DRAM bandwidth (3.2 GB/s) hurts everyone; high bandwidth
  (25 GB/s) helps;
* shrinking PQ/MSHR from (8,16) to (2,4) costs a few percent;
* growing IPCP's tables 2-100x buys almost nothing (~0.7%).
"""

import pytest

from conftest import once

from repro.analysis import run_levels, run_sweep, sweep_system
from repro.core import IpcpConfig, IpcpL1, IpcpL2
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean
from repro.workloads import spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("sens-cache-sizes", "sens-dram-bandwidth", "sens-pq-mshr", "sens-replacement", "sens-table-sizes")


TRACES = ["lbm_like", "bwaves_like", "fotonik_like", "wrf_like",
          "xz_like", "xalancbmk_like"]
SCALE = 0.4


@pytest.fixture(scope="module")
def traces():
    return [spec_trace(name, SCALE) for name in TRACES]


def swept_speedups(traces, params_list, backend, config="ipcp"):
    """Mean IPCP speedup per swept point, through the session runner.

    One fan-out over the whole (params x trace x config) grid: cells
    parallelize under REPRO_BENCH_JOBS and persist in the session
    cache, so re-running a sensitivity benchmark is a cache hit.
    """
    rows = run_sweep(traces, [config], params_list, runner=backend)
    return [row[config] for row in rows]


def test_sensitivity_replacement_policy(benchmark, traces, emit,
                                        sim_backend):
    def sweep():
        policies = ("lru", "srrip", "drrip", "ship")
        params = [sweep_system(replacement=p) for p in policies]
        return dict(zip(policies,
                        swept_speedups(traces, params, sim_backend)))

    results = once(benchmark, sweep)
    emit("sensitivity_replacement", format_table(
        ["LLC policy", "IPCP mean speedup"], list(results.items()),
        title="Sensitivity: LLC replacement policy (paper: <1% swing)",
    ))
    values = list(results.values())
    assert max(values) - min(values) < 0.08
    assert all(v > 1.1 for v in values)


def test_sensitivity_cache_sizes(benchmark, traces, emit, sim_backend):
    def sweep():
        settings = {
            "48KB/512KB/2MB (paper)": sweep_system(),
            "32KB L1": sweep_system(l1_size=32 * 1024),
            "1MB L2": sweep_system(l2_size=1024 * 1024),
            "4MB LLC": sweep_system(llc_size=4 * 1024 * 1024),
            "512KB LLC": sweep_system(llc_size=512 * 1024),
        }
        return dict(zip(settings, swept_speedups(
            traces, list(settings.values()), sim_backend)))

    results = once(benchmark, sweep)
    emit("sensitivity_cache_sizes", format_table(
        ["configuration", "IPCP mean speedup"], list(results.items()),
        title="Sensitivity: cache sizes (paper: <=1.05% difference)",
    ))
    values = list(results.values())
    assert max(values) - min(values) < 0.15
    assert all(v > 1.1 for v in values)


def test_sensitivity_dram_bandwidth(benchmark, traces, emit,
                                   sim_backend):
    def sweep():
        bandwidths = (3.2, 12.8, 25.0)
        params = [sweep_system(dram_bandwidth_gbps=bw) for bw in bandwidths]
        return dict(zip((f"{bw} GB/s" for bw in bandwidths),
                        swept_speedups(traces, params, sim_backend)))

    results = once(benchmark, sweep)
    emit("sensitivity_dram_bandwidth", format_table(
        ["DRAM bandwidth", "IPCP mean speedup"], list(results.items()),
        title="Sensitivity: DRAM bandwidth (paper: prefetchers degrade "
              "at 3.2 GB/s, improve 2-3% at 25 GB/s)",
    ))
    # More bandwidth -> more headroom for prefetching.
    assert results["25.0 GB/s"] >= results["3.2 GB/s"]
    assert all(v > 0.9 for v in results.values())


def test_sensitivity_pq_mshr(benchmark, traces, emit):
    # The paper compares IPCP's *absolute* performance across PQ/MSHR
    # budgets (the baseline changes too, so per-config speedup would be
    # misleading): (2,4) drops 2.7% vs the (8,16) pair.
    def sweep():
        ipcs = {}
        for pq, mshr in ((2, 4), (4, 8), (8, 16), (16, 32)):
            params = sweep_system(l1_pq=pq, l1_mshr=mshr)
            per_trace = [run_levels(t, "ipcp", params).ipc for t in traces]
            ipcs[f"PQ{pq}/MSHR{mshr}"] = geometric_mean(per_trace)
        reference = ipcs["PQ8/MSHR16"]
        return {name: value / reference for name, value in ipcs.items()}

    results = once(benchmark, sweep)
    emit("sensitivity_pq_mshr", format_table(
        ["L1 PQ/MSHR", "IPCP IPC vs (8,16)"], list(results.items()),
        title="Sensitivity: L1 PQ/MSHR entries (paper: (2,4) costs 2.7% "
              "vs the (8,16) baseline)",
    ))
    # Fewer MLP resources can only hurt (within noise)...
    assert results["PQ2/MSHR4"] <= 1.02
    # ...and more resources change little past the paper's pair.
    assert results["PQ16/MSHR32"] >= 0.97


def test_sensitivity_table_sizes(benchmark, traces, emit):
    # The paper: 2x-100x bigger tables buy ~0.7% on average, BUT large
    # code footprints (cactusBSSN) are the exception where bigger
    # tables help.  We measure both populations.
    def sweep():
        sizes = {
            "paper (64/128/8)": IpcpConfig(),
            "2x": IpcpConfig(ip_table_entries=128, cspt_entries=256,
                             rst_entries=16),
            "8x": IpcpConfig(ip_table_entries=512, cspt_entries=1024,
                             rst_entries=64),
        }
        cactu = spec_trace("cactu_like", SCALE)
        out = {}
        for name, config in sizes.items():
            speedups = []
            for trace in traces:
                base = simulate(trace)
                result = simulate(trace, l1_prefetcher=IpcpL1(config),
                                  l2_prefetcher=IpcpL2())
                speedups.append(result.speedup_over(base))
            cactu_base = simulate(cactu)
            cactu_result = simulate(cactu, l1_prefetcher=IpcpL1(config),
                                    l2_prefetcher=IpcpL2())
            out[name] = (geometric_mean(speedups),
                         cactu_result.speedup_over(cactu_base))
        return out

    results = once(benchmark, sweep)
    rows = [[name, mean, cactu] for name, (mean, cactu) in results.items()]
    emit("sensitivity_table_sizes", format_table(
        ["IPCP table sizes", "suite mean", "cactu_like"], rows,
        title="Sensitivity: IPCP table sizes (paper: bigger tables buy "
              "~0.7% on average but help cactusBSSN-style outliers)",
    ))
    # Bigger tables buy almost nothing on non-pathological traces...
    assert abs(results["8x"][0] - results["paper (64/128/8)"][0]) < 0.08
    # ...but do help the IP-table-thrashing outlier.
    assert results["8x"][1] >= results["paper (64/128/8)"][1] - 0.02
