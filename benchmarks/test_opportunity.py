"""Section I: the opportunity — how close does IPCP get to a perfect L1?

"An ideal solution to the memory wall problem would be an L1-D cache
hit rate of 100%" — this bench measures that bound per trace
(`simulate_ideal`) and reports what fraction of the available headroom
each prefetcher captures.
"""

from conftest import once

from repro.sim.engine import simulate_ideal
from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-opportunity",)



def collect(runner):
    rows = []
    for name, trace in runner.traces.items():
        base = runner.result(name, "none")
        ipcp = runner.result(name, "ipcp")
        ideal_ipc = simulate_ideal(trace)
        headroom = ideal_ipc - base.ipc
        captured = (ipcp.ipc - base.ipc) / headroom if headroom > 1e-6 else 1.0
        rows.append([name, base.ipc, ideal_ipc, ipcp.ipc, captured])
    return rows


def test_opportunity_headroom(benchmark, runner, emit):
    rows = once(benchmark, lambda: collect(runner))
    emit("opportunity", format_table(
        ["trace", "baseline IPC", "ideal-L1 IPC", "IPCP IPC",
         "headroom captured"],
        rows,
        title="Section I opportunity: perfect-L1 bound and IPCP's share",
    ))
    by_name = {row[0]: row for row in rows}

    # The bound is a bound: nothing exceeds the ideal-L1 IPC.
    for row in rows:
        assert row[3] <= row[2] * 1.02, row[0]
        assert row[1] <= row[2] * 1.02, row[0]

    # On prefetchable streams IPCP recovers a meaningful share of the
    # headroom; on irregular traces it cannot (which is the remaining
    # opportunity the paper's future work points at).
    assert by_name["fotonik_like"][4] > 0.25
    assert by_name["bwaves_like"][4] > 0.25
    assert by_name["omnetpp_like"][4] < 0.1
