"""Fig. 7: L1-only prefetcher comparison on memory-intensive traces.

The paper's claim: with L2/LLC prefetching off, IPCP outperforms every
competitor at the L1 except the 119 KB Bingo configuration, and SPP
(designed for the L2's filtered stream) underwhelms at the L1.
"""

import pytest

from conftest import once

from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig7-l1-comparison",)


CONFIGS = [
    "next_line", "ip_stride", "stream", "bop", "sandbox", "asp", "vldp",
    "spp_l1", "dspatch_l1", "sms_l1", "mlop_l1", "tskid_l1", "dol_l1",
    "bingo_l1", "bingo_l1_119kb", "ipcp_l1",
]

PAPER_NOTES = {
    "ipcp_l1": "wins (except Bingo-119KB)",
    "spp_l1": "underperforms at L1",
}


def test_fig7_l1_only_prefetchers(benchmark, runner, emit):
    rows = once(benchmark, lambda: runner.speedup_table(CONFIGS))
    emit("fig7_l1_prefetchers", format_table(
        ["trace"] + CONFIGS, rows,
        title="Fig. 7: L1-only prefetchers (speedup vs no prefetching)",
    ))
    means = dict(zip(CONFIGS, rows[-1][1:]))

    # IPCP leads every same-budget L1 competitor on average.
    # (Deviation vs the paper, recorded in EXPERIMENTS.md: our SPP-lite
    # is unrealistically strong at the L1 because synthetic traces have
    # clean per-page delta patterns, so it ties rather than trails.)
    rivals = [c for c in CONFIGS if c not in ("ipcp_l1", "bingo_l1_119kb")]
    for rival in rivals:
        assert means["ipcp_l1"] >= means[rival] - 0.02, rival

    # Simple next-line is the weakest sensible choice (paper's baseline
    # ordering) and nothing behaves absurdly.
    assert means["next_line"] <= means["ipcp_l1"]
    for name, value in means.items():
        assert 0.5 < value < 3.0, name

    # IPCP's average gain on memory-intensive traces is substantial
    # (paper: 1.45x with multi-level; L1-only lands below that).
    assert means["ipcp_l1"] > 1.15
