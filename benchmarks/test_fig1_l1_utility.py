"""Fig. 1: utility of prefetching into the L1 versus the L2.

The paper places the same prefetcher at the L1 (training on the
unfiltered access stream, filling the L1) and at the L2 (training on
the L1-filtered stream), and finds L1 placement is worth an extra
6-13% on average.  We reproduce the comparison with IP-stride, MLOP
and Bingo.
"""

from conftest import once

from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.ip_stride import IpStridePrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig1-l1-placement",)


FACTORIES = {
    "ip_stride": IpStridePrefetcher,
    "mlop": MlopPrefetcher,
    "bingo": BingoPrefetcher,
}


def run_comparison(suite):
    rows = []
    gains = {name: [] for name in FACTORIES}
    for trace in suite:
        base = simulate(trace)
        row = [trace.name]
        for name, factory in FACTORIES.items():
            at_l1 = simulate(trace, l1_prefetcher=factory())
            at_l2 = simulate(trace, l2_prefetcher=factory())
            l1_speedup = at_l1.speedup_over(base)
            l2_speedup = at_l2.speedup_over(base)
            row.extend([l1_speedup, l2_speedup])
            if l2_speedup > 0:
                gains[name].append(l1_speedup / l2_speedup)
        rows.append(row)
    return rows, gains


def test_fig1_l1_vs_l2_placement(benchmark, mem_suite, emit):
    rows, gains = once(benchmark, lambda: run_comparison(mem_suite))
    headers = ["trace"]
    for name in FACTORIES:
        headers.extend([f"{name}@L1", f"{name}@L2"])
    mean_row = ["geomean L1/L2 gain"]
    for name in FACTORIES:
        mean_row.extend([geometric_mean(gains[name]), ""])
    emit("fig1_l1_utility", format_table(
        headers, rows + [mean_row],
        title="Fig. 1: L1 vs L2 prefetcher placement "
              "(paper: L1 placement adds 6-13% on average)",
    ))
    # Shape claim, weakened for our substrate (documented in
    # EXPERIMENTS.md): synthetic traces miss each line exactly once, so
    # the L2 sees an unusually clean stream and the paper's "noisy
    # filtered training" penalty mostly vanishes.  L1 placement must
    # still be within noise of L2 placement for every prefetcher, and
    # show a real advantage for at least one.
    for name in FACTORIES:
        assert geometric_mean(gains[name]) >= 0.96, name
    assert max(geometric_mean(gains[name]) for name in FACTORIES) > 1.02
