"""Fig. 13b: utility of the class priority order.

Paper: prioritising the aggressive GS class first (GS > CS > CPLX > NL)
is the best order; flipping the order costs up to 9%.
"""

from conftest import once

from repro.core import IpcpConfig, IpcpL1, IpcpL2
from repro.core.ipcp_l1 import PfClass
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig13b-priority",)


ORDERS = {
    "gs_cs_cplx_nl (paper)": (
        PfClass.GS, PfClass.CS, PfClass.CPLX, PfClass.NL),
    "cs_gs_cplx_nl": (PfClass.CS, PfClass.GS, PfClass.CPLX, PfClass.NL),
    "cplx_cs_gs_nl": (PfClass.CPLX, PfClass.CS, PfClass.GS, PfClass.NL),
    "nl_cplx_cs_gs": (PfClass.NL, PfClass.CPLX, PfClass.CS, PfClass.GS),
}


def run_orders(suite):
    means = {}
    for name, order in ORDERS.items():
        speedups = []
        for trace in suite:
            base = simulate(trace)
            result = simulate(
                trace,
                l1_prefetcher=IpcpL1(IpcpConfig(priority=order)),
                l2_prefetcher=IpcpL2(),
            )
            speedups.append(result.speedup_over(base))
        means[name] = geometric_mean(speedups)
    return means


def test_fig13b_priority_order(benchmark, mem_suite, emit):
    means = once(benchmark, lambda: run_orders(mem_suite))
    rows = [[name, value] for name, value in means.items()]
    emit("fig13b_priority", format_table(
        ["priority order", "measured speedup"], rows,
        title="Fig. 13b: class priority orders "
              "(paper: GS-first best; worst order ~9% behind)",
    ))
    paper_order = means["gs_cs_cplx_nl (paper)"]
    # The paper's order is the best (or tied-best) of the tried orders.
    assert paper_order >= max(means.values()) - 0.01
    # Demoting the spatially-aggressive classes to last costs performance.
    assert means["nl_cplx_cs_gs"] <= paper_order + 1e-9
