"""Batched-engine throughput across columnar gather-window sizes.

Companion guard to ``test_simulator_throughput.py``: sweeps the
batched engine's ``chunk_records`` knob (1k / 8k / 64k records per
gather window) on the region-of-interest workload under both the
no-prefetch baseline and the full IPCP bouquet, and asserts the
batched engine beats the scalar engine at *every* window size — the
chunking is a memory/locality trade-off, never a correctness or a
win/lose one.  Rates land in ``extra_info`` for BENCH_*.json.
"""

import time

from repro.core import IpcpL1, IpcpL2
from repro.sim.batched import simulate_batched
from repro.sim.engine import simulate
from repro.workloads import spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("bench-throughput",)

CHUNK_SIZES = (1_024, 8_192, 65_536)


def best_rate(trace, runner, reps):
    """Best-of-``reps`` records/second for ``runner(trace)``."""
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        runner(trace)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return len(trace) / best


def configs():
    """The two measured configurations: baseline and full IPCP."""
    return (
        ("baseline", lambda: {}),
        ("ipcp", lambda: {"l1_prefetcher": IpcpL1(),
                          "l2_prefetcher": IpcpL2()}),
    )


def test_engine_batch_sizes(benchmark, emit):
    trace = spec_trace("lbm_like", 0.5)

    def run():
        rates = {}
        for config, build in configs():
            rates[f"scalar_{config}"] = best_rate(
                trace, lambda t: simulate(t, **build()), reps=3)
            for chunk in CHUNK_SIZES:
                rates[f"batched_{config}_{chunk // 1024}k"] = best_rate(
                    trace,
                    lambda t, c=chunk: simulate_batched(
                        t, chunk_records=c, **build()),
                    reps=5)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rates"] = {k: round(v) for k, v in rates.items()}
    emit("engine_batch", "\n".join(
        [f"batched engine vs chunk size ({trace.name}, "
         f"{len(trace)} records)"]
        + [f"  {name}: {rate:,.0f} records/s"
           for name, rate in rates.items()]
    ))
    for config, _ in configs():
        scalar = rates[f"scalar_{config}"]
        for chunk in CHUNK_SIZES:
            assert rates[f"batched_{config}_{chunk // 1024}k"] >= scalar
