"""Section VI-D at (reduced) scale: the heterogeneous-mix distribution.

The paper evaluates 1000 heterogeneous mixes; a pure-Python budget
supports a seeded sample.  We run 12 random 4-core mixes (half from the
whole suite, half memory-intensive-only, like the paper's 500+500
split) under IPCP and MLOP, and check the distributional claims: IPCP's
mean gain leads, and its worst case is the mildest.
"""

from conftest import once

from repro.core import IpcpL1, IpcpL2
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.sim.multicore import simulate_mix
from repro.stats import format_table, geometric_mean, \
    normalized_weighted_speedup
from repro.workloads import heterogeneous_mixes

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-mix-distribution",)


CONFIGS = {
    "ipcp": {"l1": IpcpL1, "l2": IpcpL2},
    "mlop": {"l1": MlopPrefetcher,
             "l2": lambda: NextLinePrefetcher(degree=1)},
}

MIXES_PER_POOL = 6
SCALE = 0.2


def run_distribution():
    mixes = (
        heterogeneous_mixes(MIXES_PER_POOL, 4, scale=SCALE, seed=101)
        + heterogeneous_mixes(MIXES_PER_POOL, 4,
                              memory_intensive_only=True,
                              scale=SCALE, seed=202)
    )
    alone: dict[str, float] = {}
    gains = {config: [] for config in CONFIGS}
    for traces in mixes:
        base = simulate_mix(traces, warmup=1_500, roi=6_000,
                            alone_ipc=alone)
        for config, factories in CONFIGS.items():
            result = simulate_mix(
                traces,
                l1_factory=factories["l1"],
                l2_factory=factories.get("l2"),
                warmup=1_500, roi=6_000, alone_ipc=alone,
            )
            gains[config].append(
                normalized_weighted_speedup(result, base)
            )
    return gains


def test_heterogeneous_mix_distribution(benchmark, emit):
    gains = once(benchmark, run_distribution)
    rows = []
    for config, values in gains.items():
        ordered = sorted(values)
        rows.append([
            config,
            geometric_mean(values),
            ordered[0],
            ordered[len(ordered) // 2],
            ordered[-1],
        ])
    emit("mix_distribution", format_table(
        ["config", "geomean", "min", "median", "max"], rows,
        title=f"Section VI-D: {2 * MIXES_PER_POOL} heterogeneous 4-core "
              "mixes (paper runs 1000; IPCP 1.274 vs Bingo 1.261 / "
              "MLOP 1.259 on the heterogeneous split)",
    ))
    stats = {row[0]: row for row in rows}
    # IPCP's mean gain leads and is positive.
    assert stats["ipcp"][1] >= stats["mlop"][1] - 0.01
    assert stats["ipcp"][1] > 1.02
    # IPCP is more aggressive than our conservative MLOP-lite, so its
    # worst mix dips further — but the throttler bounds the damage
    # (paper: the worst IPCP mix loses 9% while rivals lose 50-70%).
    assert stats["ipcp"][2] > 0.85
    # And the upside is real: IPCP gains on most mixes.
    winning = sum(1 for v in gains["ipcp"] if v > 1.0)
    assert winning > len(gains["ipcp"]) // 2
