"""Ablation: the CPLX degree sweet-spot (Section V).

Paper: "CPLX with prefetch degree of three at the L1 provides a
sweet-spot in terms of prefetch coverage and accuracy ... With degree 4
and above, CPLX degrades the performance for high MPKI benchmarks" —
the reason CPLX is never replayed deep at the L2.
"""

import pytest

from conftest import once

from repro.core import IpcpConfig, IpcpL1, IpcpL2
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean
from repro.workloads import spec_trace

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-cplx-degree",)


DEGREES = (1, 2, 3, 4, 6)


def sweep():
    traces = {
        "wrf_like": spec_trace("wrf_like", 0.4),          # CPLX home turf
        "mcf_i_like": spec_trace("mcf_i_like", 0.4),      # high-MPKI mixed
    }
    results = {}
    for degree in DEGREES:
        config = IpcpConfig(cplx_degree=degree)
        row = {}
        for name, trace in traces.items():
            base = simulate(trace)
            result = simulate(trace, l1_prefetcher=IpcpL1(config),
                              l2_prefetcher=IpcpL2())
            row[name] = result.speedup_over(base)
        results[degree] = row
    return results


def test_ablation_cplx_degree(benchmark, emit):
    results = once(benchmark, sweep)
    rows = [
        [f"degree {degree}", row["wrf_like"], row["mcf_i_like"],
         geometric_mean(row.values())]
        for degree, row in results.items()
    ]
    emit("ablation_cplx_degree", format_table(
        ["CPLX degree", "wrf_like", "mcf_i_like", "geomean"], rows,
        title="Ablation: CPLX prefetch degree (paper: 3 is the sweet-spot; "
              ">=4 hurts high-MPKI traces)",
    ))
    means = {degree: geometric_mean(row.values())
             for degree, row in results.items()}
    # Degree 3 (the paper's choice) is at or near the best of the sweep.
    assert means[3] >= max(means.values()) - 0.05
    # Degree 1 leaves coverage on the table relative to the sweet-spot.
    assert means[3] >= means[1] - 0.02
    # Deep CPLX on the high-MPKI trace never beats the sweet-spot by much.
    assert results[6]["mcf_i_like"] <= results[3]["mcf_i_like"] + 0.05
