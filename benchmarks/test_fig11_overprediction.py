"""Fig. 11: covered, uncovered and over-predicted demand misses at the L1.

Over-predictions are prefetched blocks that are evicted unused — the
cost side of IPCP's aggressive GS class.
"""

from conftest import once

from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig11-overprediction",)



def collect(runner):
    rows = []
    for name in runner.traces:
        result = runner.result(name, "ipcp")
        stats = result.l1
        would_be_misses = stats.pf_useful + stats.uncovered_misses
        covered = stats.pf_useful / would_be_misses if would_be_misses else 0.0
        uncovered = 1.0 - covered
        over = (stats.pf_unused_evicted / would_be_misses
                if would_be_misses else 0.0)
        rows.append([name, covered, uncovered, over])
    return rows


def test_fig11_overprediction(benchmark, runner, emit):
    rows = once(benchmark, lambda: collect(runner))
    emit("fig11_overprediction", format_table(
        ["trace", "covered", "uncovered", "over-predicted (fraction)"],
        rows,
        title="Fig. 11: covered / uncovered / over-predicted at the L1",
    ))
    by_name = {row[0]: row for row in rows}

    # Streaming traces: mostly covered, little over-prediction.
    assert by_name["fotonik_like"][1] > 0.7
    assert by_name["fotonik_like"][3] < 0.3
    # Irregular traces: mostly uncovered (the paper's mcf/omnetpp tail).
    assert by_name["omnetpp_like"][2] > 0.8
    # Fractions are sane everywhere.
    for row in rows:
        assert 0.0 <= row[1] <= 1.0 and 0.0 <= row[2] <= 1.0
