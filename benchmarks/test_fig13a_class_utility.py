"""Fig. 13a: utility of IPCP classes in isolation and as a bouquet.

Paper findings reproduced here: CS and CPLX are the strongest single
classes (>1.30x); GS alone is weak (<1.15x in the paper) but adds
materially to the bouquet; tentative NL adds a little on top of
CS+CPLX; the L2 IPCP adds ~5.1% on top of the L1 bouquet; and removing
the metadata channel costs ~3.1%.
"""

from conftest import once

from repro.core import IpcpConfig, IpcpL1, IpcpL2
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig13a-class-utility", "fig13a-metadata")


VARIANTS = {
    "cs_only": lambda: (IpcpL1(IpcpConfig(
        enable_cplx=False, enable_gs=False, enable_nl=False)), None),
    "cplx_only": lambda: (IpcpL1(IpcpConfig(
        enable_cs=False, enable_gs=False, enable_nl=False)), None),
    "gs_only": lambda: (IpcpL1(IpcpConfig(
        enable_cs=False, enable_cplx=False, enable_nl=False)), None),
    "cs+cplx": lambda: (IpcpL1(IpcpConfig(
        enable_gs=False, enable_nl=False)), None),
    "cs+cplx+nl": lambda: (IpcpL1(IpcpConfig(enable_gs=False)), None),
    "bouquet_l1": lambda: (IpcpL1(), None),
    "bouquet_no_meta": lambda: (
        IpcpL1(IpcpConfig(send_metadata=False)), IpcpL2()),
    "bouquet_l1_l2": lambda: (IpcpL1(), IpcpL2()),
}


def run_variants(suite):
    means = {}
    for name, build in VARIANTS.items():
        speedups = []
        for trace in suite:
            l1, l2 = build()
            base = simulate(trace)
            result = simulate(trace, l1_prefetcher=l1, l2_prefetcher=l2)
            speedups.append(result.speedup_over(base))
        means[name] = geometric_mean(speedups)
    return means


def test_fig13a_class_utility(benchmark, mem_suite, emit):
    means = once(benchmark, lambda: run_variants(mem_suite))
    paper = {
        "cs_only": ">1.30", "cplx_only": ">1.30", "gs_only": "<1.15",
        "cs+cplx": "1.34", "cs+cplx+nl": "1.36", "bouquet_l1": "1.40",
        "bouquet_no_meta": "1.42 (-3.1%)", "bouquet_l1_l2": "1.451",
    }
    rows = [[name, value, paper[name]] for name, value in means.items()]
    emit("fig13a_class_utility", format_table(
        ["variant", "measured speedup", "paper"], rows,
        title="Fig. 13a: utility of IPCP classes",
    ))

    # Single classes are all positive contributors on their home turf.
    assert means["cs_only"] > 1.05
    assert means["gs_only"] > 1.0
    # Adding classes never hurts the average:
    assert means["cs+cplx"] >= means["cs_only"] - 0.02
    assert means["bouquet_l1"] >= means["cs+cplx"] - 0.02
    # The full multi-level bouquet is the best variant.
    assert means["bouquet_l1_l2"] >= max(means.values()) - 1e-9
    # L2 IPCP adds on top of the L1 bouquet (paper: +5.1%).
    assert means["bouquet_l1_l2"] > means["bouquet_l1"]
    # Metadata removal costs performance (paper: -3.1%).
    assert means["bouquet_l1_l2"] >= means["bouquet_no_meta"]
