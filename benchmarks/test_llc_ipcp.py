"""Section V: "We do not implement it at the LLC, as we do not see any
considerable benefit."

IPCP's metadata rides on every L1 prefetch all the way down, so an
IPCP-L2-style decoder *can* be attached at the LLC.  This bench does
exactly that and verifies the paper's decision: the third level adds
nothing worth its silicon.
"""

from conftest import once

from repro.core import IpcpL1, IpcpL2
from repro.sim.engine import simulate
from repro.stats import format_table, geometric_mean

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("abl-llc",)



def sweep(mem_suite):
    results = {}
    for label, llc_factory in (("ipcp L1+L2 (paper)", None),
                               ("ipcp L1+L2+LLC", IpcpL2)):
        speedups = []
        for trace in mem_suite:
            base = simulate(trace)
            result = simulate(
                trace,
                l1_prefetcher=IpcpL1(),
                l2_prefetcher=IpcpL2(),
                llc_prefetcher=llc_factory() if llc_factory else None,
            )
            speedups.append(result.speedup_over(base))
        results[label] = geometric_mean(speedups)
    return results


def test_llc_ipcp_adds_nothing(benchmark, mem_suite, emit):
    results = once(benchmark, lambda: sweep(mem_suite))
    rows = [[label, value] for label, value in results.items()]
    emit("llc_ipcp", format_table(
        ["configuration", "mean speedup"], rows,
        title='Section V: IPCP at the LLC ("no considerable benefit")',
    ))
    two_level = results["ipcp L1+L2 (paper)"]
    three_level = results["ipcp L1+L2+LLC"]
    # The LLC instance must neither help materially nor hurt.
    assert abs(three_level - two_level) < 0.03
