"""Table IV: prefetch coverage and accuracy for every combination.

Paper values (46-trace averages): IPCP 0.60/0.79/0.83 coverage at
L1/L2/LLC with 0.80 accuracy at L1; T-SKID has the best L1 coverage
(0.67) but the worst accuracy (0.60).
"""

from conftest import once

from repro.stats import format_table

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("table4-coverage-accuracy",)


CONFIGS = ["ipcp", "spp_ppf_dspatch", "mlop", "bingo", "tskid"]

PAPER = {
    "ipcp": (0.60, 0.79, 0.83, 0.80),
    "spp_ppf_dspatch": (0.50, 0.75, 0.83, None),
    "mlop": (0.59, 0.72, 0.78, 0.64),
    "bingo": (0.54, 0.72, 0.80, 0.79),
    "tskid": (0.67, 0.72, 0.80, 0.60),
}


def miss_reduction(result, baseline, level):
    """Coverage as the paper computes it: demand-miss reduction vs the
    no-prefetching baseline run at the same level."""
    base = getattr(baseline, level).demand_misses
    if not base:
        return 0.0
    return max(0.0, 1.0 - getattr(result, level).demand_misses / base)


def collect(runner):
    table = {}
    for config in CONFIGS:
        l1_cov, l2_cov, llc_cov, acc = [], [], [], []
        for name in runner.traces:
            result = runner.result(name, config)
            baseline = runner.result(name, "none")
            l1_cov.append(miss_reduction(result, baseline, "l1"))
            l2_cov.append(miss_reduction(result, baseline, "l2"))
            llc_cov.append(miss_reduction(result, baseline, "llc"))
            if result.l1.pf_filled:
                acc.append(result.l1.accuracy)
        count = len(l1_cov)
        table[config] = (
            sum(l1_cov) / count,
            sum(l2_cov) / count,
            sum(llc_cov) / count,
            sum(acc) / len(acc) if acc else 0.0,
        )
    return table


def test_table4_coverage_accuracy(benchmark, runner, emit):
    table = once(benchmark, lambda: collect(runner))
    rows = []
    for config, (l1c, l2c, llcc, acc) in table.items():
        p = PAPER[config]
        rows.append([config, l1c, l2c, llcc, acc,
                     f"paper: {p[0]}/{p[1]}/{p[2]} acc {p[3]}"])
    emit("table4_coverage_accuracy", format_table(
        ["combination", "L1 cov", "L2 cov", "LLC cov", "L1 acc", "paper"],
        rows, title="Table IV: coverage and accuracy per combination",
    ))
    # IPCP's L1 accuracy is high (paper: 0.80); our T-SKID-lite is more
    # conservative than the real one so it posts an unrealistically high
    # accuracy — IPCP only needs to clear the paper-scale bar.
    accuracies = {config: row[3] for config, row in table.items()}
    assert accuracies["ipcp"] > 0.6
    # IPCP's L1 coverage is at or near the top of the pack.
    l1_coverages = {config: row[0] for config, row in table.items()}
    assert l1_coverages["ipcp"] >= max(l1_coverages.values()) - 0.10
    assert table["ipcp"][0] > 0.3
    # Coverages are valid fractions everywhere.
    for values in table.values():
        assert all(0.0 <= v <= 1.0 for v in values)
