"""Bounded-memory guard for the streaming ingestion path.

Not a paper artifact — a regression guard for `repro.ingest`'s core
promise: peak memory while streaming a trace is one columnar chunk
plus one I/O block, *independent of trace length*.  The guard
generates a multi-gigabyte-scale synthetic gzipped k6 trace (streamed
out line by line, never held), streams it back through
``stream_k6_columns`` in a subprocess, and asserts the subprocess's
peak RSS stayed under a fixed budget that does not scale with the
trace.  ``ru_maxrss`` is a process-lifetime high-water mark, which is
exactly why the measured work runs in a child process: the parent's
own allocations (pytest, imports, other benchmarks in the session)
must not pollute the reading.

Environment knobs:

* ``REPRO_INGEST_BENCH_MB`` — decompressed size of the synthetic
  trace in MiB (default 1024; CI uses a smaller value — the bound is
  length-independent, so any size exercises the same guarantee).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ()

#: Fixed peak-RSS budget for the child process, in MiB.  Python +
#: numpy import baseline is ~100 MiB; one 65536-record chunk is ~1.5
#: MiB; the rest is headroom that must NOT grow with the trace.
RSS_BUDGET_MIB = 512

SIZE_MB = int(os.environ.get("REPRO_INGEST_BENCH_MB", "1024"))

_CHILD = r"""
import gzip, json, os, resource, sys

sys.path.insert(0, sys.argv[3])
from repro.ingest import stream_k6_columns

target_bytes = int(sys.argv[1]) * (1 << 20)
path = sys.argv[2]

# Stream the synthetic trace OUT without ever holding it: a generator
# writing one line at a time into the gzip member.
written = 0
line_no = 0
with gzip.open(path, "wt", encoding="ascii", compresslevel=1) as fh:
    while written < target_bytes:
        command = "P_MEM_RD" if line_no % 3 else "P_MEM_WR"
        line = f"0x{0x1_0000 + 64 * (line_no % (1 << 24)):x} {command} {10 * line_no}\n"
        fh.write(line)
        written += len(line)
        line_no += 1

# Stream it back IN: consume every chunk, keep none.
records = 0
chunks = 0
for chunk in stream_k6_columns(path):
    records += len(chunk.kind)
    chunks += 1

peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "records": records,
    "chunks": chunks,
    "decompressed_bytes": written,
    "peak_rss_mib": peak_kib / 1024.0,
}))
"""


def test_streaming_ingest_rss_is_independent_of_trace_length(tmp_path):
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    path = str(tmp_path / "huge.k6.gz")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(SIZE_MB), path,
         os.path.abspath(src_dir)],
        capture_output=True, text=True, check=True,
    )
    stats = json.loads(out.stdout.strip().splitlines()[-1])
    assert stats["records"] > 0
    assert stats["decompressed_bytes"] >= SIZE_MB * (1 << 20)
    print(f"\ningest-memory: {stats['records']:,} records "
          f"({stats['decompressed_bytes'] / (1 << 30):.2f} GiB text) "
          f"in {stats['chunks']} chunks, "
          f"peak RSS {stats['peak_rss_mib']:.0f} MiB "
          f"(budget {RSS_BUDGET_MIB})")
    assert stats["peak_rss_mib"] < RSS_BUDGET_MIB, (
        f"streaming ingest peaked at {stats['peak_rss_mib']:.0f} MiB — "
        f"the bounded-memory contract (< {RSS_BUDGET_MIB} MiB, "
        f"independent of trace length) is broken")
