"""Fig. 15 (+ Section VI-D): multicore normalized weighted speedups.

Paper: across homogeneous and heterogeneous mixes IPCP averages a 23.4%
improvement against 20.9% (Bingo) and 20% (MLOP).  Full thousand-mix
sweeps are far beyond a pure-Python budget; we run a representative set
of 4-core homogeneous mixes plus seeded heterogeneous mixes and check
the ordering and the positive-gain claim.
"""

from conftest import once

from repro.core import IpcpL1, IpcpL2
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.sim.multicore import simulate_mix
from repro.stats import format_table, geometric_mean, \
    normalized_weighted_speedup
from repro.workloads import heterogeneous_mixes, homogeneous_mix

#: Claim registry rows this benchmark backs (see docs/paperclaims.md).
CLAIM_IDS = ("fig15-multicore",)


HOMOGENEOUS = ["lbm_like", "fotonik_like", "bwaves_like", "omnetpp_like"]

CONFIGS = {
    "ipcp": {"l1": IpcpL1, "l2": IpcpL2},
    "mlop": {"l1": MlopPrefetcher,
             "l2": lambda: NextLinePrefetcher(degree=1)},
    "bingo": {"l1": BingoPrefetcher,
              "l2": lambda: NextLinePrefetcher(degree=1)},
}

WARMUP = 2_000
ROI = 8_000
MIX_SCALE = 0.25


def run_mixes(backend=None):
    mixes = {
        f"{name} x4": homogeneous_mix(name, 4, scale=MIX_SCALE)
        for name in HOMOGENEOUS
    }
    # The paper also evaluates 8-core mixes; one representative case.
    mixes["lbm_like x8"] = homogeneous_mix("lbm_like", 8, scale=MIX_SCALE)
    for i, mix in enumerate(
        heterogeneous_mixes(2, 4, scale=MIX_SCALE, seed=31)
    ):
        mixes[f"hetero_{i}"] = mix

    rows = []
    gains = {config: [] for config in CONFIGS}
    alone_cache: dict[str, float] = {}
    for mix_name, traces in mixes.items():
        # The per-core alone runs go through the session runner, so
        # they parallelize and persist in the shared result cache.
        base = simulate_mix(traces, warmup=WARMUP, roi=ROI,
                            alone_ipc=alone_cache, runner=backend)
        row = [mix_name]
        for config, factories in CONFIGS.items():
            result = simulate_mix(
                traces,
                l1_factory=factories["l1"],
                l2_factory=factories.get("l2"),
                warmup=WARMUP,
                roi=ROI,
                alone_ipc=alone_cache,
            )
            nws = normalized_weighted_speedup(result, base)
            row.append(nws)
            gains[config].append(nws)
        rows.append(row)
    return rows, gains


def test_fig15_multicore_summary(benchmark, emit, sim_backend):
    rows, gains = once(benchmark, lambda: run_mixes(sim_backend))
    mean_row = ["geomean"] + [
        geometric_mean(gains[config]) for config in CONFIGS
    ]
    paper_row = ["paper (all mixes)", 1.234, 1.200, 1.209]
    emit("fig15_multicore", format_table(
        ["mix"] + list(CONFIGS), rows + [mean_row, paper_row],
        title="Fig. 15: multicore normalized weighted speedup",
    ))
    means = dict(zip(CONFIGS, mean_row[1:]))
    # IPCP leads the multicore summary and gains are positive.
    assert means["ipcp"] >= max(means.values()) - 0.02
    assert means["ipcp"] > 1.05
    # IPCP never collapses on a mix (paper: coordinated throttling keeps
    # its worst homogeneous degradation small); rivals are allowed the
    # larger losses the paper reports on contended homogeneous mixes
    # (10-14%, and far worse for T-SKID on mcf).
    assert min(gains["ipcp"]) > 0.9
    for config, values in gains.items():
        assert min(values) > 0.5, config
