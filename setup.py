"""Legacy setup shim (the environment lacks the `wheel` package, so the
PEP 517 editable-install path is unavailable offline)."""

from setuptools import setup

setup()
